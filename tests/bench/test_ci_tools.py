"""Tests for the CI sharding and summary tools in scripts/."""

import importlib
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPTS = REPO_ROOT / "scripts"
sys.path.insert(0, str(SCRIPTS))

ci_shard = importlib.import_module("ci_shard")
ci_summary = importlib.import_module("ci_summary")
perf_gate = importlib.import_module("perf_gate")


def timings_file(tmp_path, entries):
    tmp_path.mkdir(parents=True, exist_ok=True)
    path = tmp_path / "bench-timings.json"
    path.write_text(json.dumps({
        "schema": 1, "tree": "t", "jobs": 1, "start_method": "",
        "total_wall_s": sum(e.get("wall_s", 0.0) for e in entries),
        "experiments": entries,
    }))
    return path


class TestShardPartition:
    def test_experiment_name_extraction(self):
        assert ci_shard.experiment_for(
            Path("benchmarks/test_fig10_device_sharing.py")) == "fig10"
        assert ci_shard.experiment_for(
            Path("benchmarks/test_table1_latency_breakdown.py")) == "table1"

    def test_partition_is_deterministic_and_total(self):
        files = [Path(f"benchmarks/test_fig{i}_x.py") for i in range(8)]
        weights = {f: float(i + 1) for i, f in enumerate(files)}
        a = ci_shard.partition(files, weights, 2)
        b = ci_shard.partition(files, weights, 2)
        assert a == b
        combined = sorted(p for shard in a for p in shard)
        assert combined == sorted(files)

    def test_partition_balances_loads(self):
        files = [Path(f"t{i}.py") for i in range(6)]
        weights = dict.fromkeys(files, 1.0)
        weights[files[0]] = 10.0
        shards = ci_shard.partition(files, weights, 2)
        loads = [sum(weights[f] for f in s) for s in shards]
        # LPT: the heavy file sits alone-ish; loads within one unit of
        # optimal (10 vs 5).
        assert max(loads) == 10.0

    def test_every_benchmark_file_lands_in_exactly_one_shard(self):
        files = sorted((REPO_ROOT / "benchmarks").glob("test_*.py"))
        assert files, "benchmarks/ suite is missing"
        weights = ci_shard.file_weights(files, {})
        shards = ci_shard.partition(files, weights, 2)
        combined = sorted(p for shard in shards for p in shard)
        assert combined == files

    def test_cli_json_format(self, tmp_path, capsys):
        timings = timings_file(tmp_path, [
            {"experiment": "fig6", "wall_s": 3.0, "sim_time_ns": 10,
             "machines": 1, "cached": False, "ok": True},
        ])
        rc = ci_shard.main(["--shards", "2", "--index", "0",
                            "--timings", str(timings),
                            "--format", "json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["shards"] == 2 and data["shard"] == 0
        assert all(f.startswith("benchmarks/") for f in data["files"])

    def test_cli_rejects_bad_index(self, tmp_path):
        assert ci_shard.main(["--shards", "2", "--index", "2"]) == 2


class TestShardCells:
    def sweep_timings(self, tmp_path, cells, wall_s):
        return timings_file(tmp_path, [
            {"experiment": f"sweep/{c}", "wall_s": w, "sim_time_ns": 1,
             "machines": 1, "cached": False, "ok": True}
            for c, w in zip(cells, wall_s)])

    def test_cell_weights_strip_prefix_and_fall_back_to_median(self):
        weights = {"sweep/a": 1.0, "sweep/b": 3.0, "sweep/c": 5.0,
                   "fig6": 100.0}
        per_cell = ci_shard.cell_weights(["a", "b", "c", "new"], weights)
        assert per_cell["a"] == 1.0 and per_cell["c"] == 5.0
        # Unseen cell gets the median of known *cell* weights; registry
        # experiment entries never leak in.
        assert per_cell["new"] == 3.0

    def test_every_default_grid_cell_lands_in_exactly_one_shard(self):
        from repro.sweep.grid import SweepManifest
        cells = SweepManifest.builtin().cells("default")
        per_cell = ci_shard.cell_weights(cells, {})
        shards = ci_shard.partition(cells, per_cell, 3)
        combined = sorted(c for shard in shards for c in shard)
        assert combined == sorted(cells)

    def test_cli_cells_json_format(self, tmp_path, capsys):
        from repro.sweep.grid import SweepManifest
        cells = SweepManifest.builtin().cells("default")
        timings = self.sweep_timings(tmp_path, cells,
                                     range(1, len(cells) + 1))
        rc = ci_shard.main(["--shards", "2", "--index", "1",
                            "--kind", "cells",
                            "--sweep-timings", str(timings),
                            "--format", "json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["shards"] == 2 and data["shard"] == 1
        assert data["cells"]
        assert all(c in cells for c in data["cells"])
        assert data["weight_s"] > 0

    def test_cli_cells_args_format_is_space_separated(self, capsys):
        rc = ci_shard.main(["--shards", "1", "--index", "0",
                            "--kind", "cells"])
        assert rc == 0
        out = capsys.readouterr().out.strip()
        from repro.sweep.grid import SweepManifest
        assert out.split(" ") == SweepManifest.builtin().cells("default")


class TestSummary:
    JUNIT = ('<testsuites><testsuite tests="3" failures="1" errors="0" '
             'skipped="0" time="4.5">'
             '<testcase classname="b.t" name="ok" time="1.0"/>'
             '<testcase classname="b.t" name="slow" time="3.0"/>'
             '<testcase classname="b.t" name="bad" time="0.5">'
             '<failure message="boom"/></testcase>'
             '</testsuite></testsuites>')

    def test_parse_junit_totals(self, tmp_path):
        path = tmp_path / "bench-shard0.xml"
        path.write_text(self.JUNIT)
        parsed = ci_summary.parse_junit(path)
        assert parsed["label"] == "bench-shard0"
        assert parsed["totals"]["tests"] == 3
        assert parsed["totals"]["failures"] == 1
        assert sum(c["failed"] for c in parsed["cases"]) == 1

    def test_markdown_summary_merges_shards(self, tmp_path, capsys):
        ok = ('<testsuite tests="2" failures="0" errors="0" '
              'skipped="0" time="1.0">'
              '<testcase classname="u" name="a" time="0.5"/>'
              '<testcase classname="u" name="b" time="0.5"/>'
              '</testsuite>')
        (tmp_path / "unit.xml").write_text(ok)
        (tmp_path / "bench-shard0.xml").write_text(self.JUNIT)
        timings = timings_file(tmp_path, [
            {"experiment": "fig13", "wall_s": 58.0, "sim_time_ns": 5,
             "machines": 40, "cached": False, "ok": True},
            {"experiment": "table2", "wall_s": 0.01, "sim_time_ns": 0,
             "machines": 0, "cached": False, "ok": True},
        ])
        rc = ci_summary.main([str(tmp_path / "unit.xml"),
                              str(tmp_path / "bench-shard0.xml"),
                              "--timings", str(timings)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "| unit | 2 | 0 |" in out
        assert "❌ fail" in out and "✅ pass" in out
        assert "Slowest 10 experiments" in out
        # fig13 tops the slowest table
        assert out.index("fig13") < out.index("table2")

    def test_summary_without_timings_uses_junit_durations(
            self, tmp_path, capsys):
        (tmp_path / "bench-shard0.xml").write_text(self.JUNIT)
        rc = ci_summary.main([str(tmp_path / "bench-shard0.xml")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "`b.t::slow`" in out

    def test_missing_junit_files_warn_not_crash(self, tmp_path, capsys):
        rc = ci_summary.main([str(tmp_path / "nope.xml")])
        assert rc == 0
        captured = capsys.readouterr()
        assert "_no junit results found_" in captured.out
        assert "missing junit file" in captured.err

    def test_lint_section_reports_counts(self, tmp_path, capsys):
        import json
        (tmp_path / "bench-shard0.xml").write_text(self.JUNIT)
        report = tmp_path / "lint-report.json"
        report.write_text(json.dumps({
            "files_checked": 195, "baselined": 10,
            "violations": [
                {"rule": "SIM001", "path": "x.py", "line": 3},
                {"rule": "SIM016", "path": "y.py", "line": 7},
                {"rule": "SIM016", "path": "z.py", "line": 9},
            ]}))
        rc = ci_summary.main([str(tmp_path / "bench-shard0.xml"),
                              "--lint", str(report)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "### simlint" in out
        assert "files checked: 195" in out
        assert "new violations: 3" in out
        assert "burn-down backlog): 10" in out
        assert "| SIM016 | 2 |" in out

    def test_sweep_section_renders_heat_table_and_blame(
            self, tmp_path, capsys):
        from repro.sweep import compare as cmp_mod
        rec = {"metrics": {"p99_ns": 9000.0}, "tenants": []}
        bad = {"metrics": {"p99_ns": 90000.0}, "tenants": []}
        report = cmp_mod.compare_results(
            {"grid": "default",
             "cells": {"engine=bypassd/wl=rr/faults=none": rec,
                       "engine=sync/wl=rr/faults=none": rec}},
            {"grid": "default",
             "cells": {"engine=bypassd/wl=rr/faults=none": bad,
                       "engine=sync/wl=rr/faults=none": rec}})
        (tmp_path / "bench-shard0.xml").write_text(self.JUNIT)
        path = tmp_path / "sweep-report.json"
        path.write_text(json.dumps(report))
        rc = ci_summary.main([str(tmp_path / "bench-shard0.xml"),
                              "--sweep", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "### Sweep grid `default`" in out
        assert "| workload / faults | bypassd | sync |" in out
        assert "**REGRESSED (p99_ns" in out
        assert "per-layer blame" in out

    def test_sweep_section_tolerates_broken_report(self, tmp_path,
                                                   capsys):
        (tmp_path / "bench-shard0.xml").write_text(self.JUNIT)
        path = tmp_path / "sweep-report.json"
        path.write_text("{not json")
        rc = ci_summary.main([str(tmp_path / "bench-shard0.xml"),
                              "--sweep", str(path)])
        assert rc == 0
        assert "could not read sweep report" in capsys.readouterr().out

    def test_lint_section_tolerates_broken_report(self, tmp_path, capsys):
        (tmp_path / "bench-shard0.xml").write_text(self.JUNIT)
        report = tmp_path / "lint-report.json"
        report.write_text("{not json")
        rc = ci_summary.main([str(tmp_path / "bench-shard0.xml"),
                              "--lint", str(report)])
        assert rc == 0
        assert "could not read lint report" in capsys.readouterr().out


class TestEngineBenchSection:
    ARTIFACT = {"schema": "engine-bench/v1", "benchmarks": [
        {"name": "pure-timeout", "ops": 200_000,
         "new_ops_per_sec": 700_000.0, "ref_ops_per_sec": 650_000.0,
         "speedup": 1.08},
        {"name": "event-churn", "ops": 200_000,
         "new_ops_per_sec": 1_400_000.0, "ref_ops_per_sec": 700_000.0,
         "speedup": 2.0},
    ]}

    def test_engine_bench_section_renders(self, tmp_path, capsys):
        (tmp_path / "bench-shard0.xml").write_text(TestSummary.JUNIT)
        artifact = tmp_path / "engine-bench.json"
        artifact.write_text(json.dumps(self.ARTIFACT))
        rc = ci_summary.main([str(tmp_path / "bench-shard0.xml"),
                              "--engine-bench", str(artifact)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "### Engine hot-path ops/sec" in out
        assert "| event-churn | 200,000 | 1,400,000 | 700,000 | 2.00x |" \
            in out

    def test_engine_bench_section_tolerates_broken_artifact(
            self, tmp_path, capsys):
        (tmp_path / "bench-shard0.xml").write_text(TestSummary.JUNIT)
        artifact = tmp_path / "engine-bench.json"
        artifact.write_text("{not json")
        rc = ci_summary.main([str(tmp_path / "bench-shard0.xml"),
                              "--engine-bench", str(artifact)])
        assert rc == 0
        assert "could not read engine bench" in capsys.readouterr().out


class TestPerfGate:
    def entry(self, name, wall_s, ok=True):
        return {"experiment": name, "wall_s": wall_s, "sim_time_ns": 1,
                "machines": 1, "cached": False, "ok": ok}

    def test_within_band_passes(self, tmp_path, capsys):
        base = timings_file(tmp_path / "b", [self.entry("fig13", 10.0)])
        fresh = timings_file(tmp_path / "f", [self.entry("fig13", 12.0)])
        rc = perf_gate.main([str(fresh), "--baseline", str(base)])
        assert rc == 0
        assert "0 regressed" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        base = timings_file(tmp_path / "b", [self.entry("fig13", 10.0)])
        fresh = timings_file(tmp_path / "f", [self.entry("fig13", 30.0)])
        rc = perf_gate.main([str(fresh), "--baseline", str(base),
                             "--tolerance", "1.0"])
        assert rc == 1
        assert "FAIL: fig13" in capsys.readouterr().out

    def test_floor_absorbs_tiny_experiment_jitter(self, tmp_path):
        # 1 ms -> 100 ms is a 100x ratio but far under the floor
        base = timings_file(tmp_path / "b", [self.entry("table4", 0.001)])
        fresh = timings_file(tmp_path / "f", [self.entry("table4", 0.1)])
        assert perf_gate.main([str(fresh), "--baseline", str(base)]) == 0

    def test_failed_experiment_fails_gate(self, tmp_path):
        base = timings_file(tmp_path / "b", [self.entry("fig13", 10.0)])
        fresh = timings_file(
            tmp_path / "f", [self.entry("fig13", 1.0, ok=False)])
        assert perf_gate.main([str(fresh),
                               "--baseline", str(base)]) == 1

    def test_missing_experiment_fails_gate(self, tmp_path, capsys):
        base = timings_file(tmp_path / "b", [self.entry("fig13", 10.0),
                                             self.entry("fig14", 5.0)])
        fresh = timings_file(tmp_path / "f", [self.entry("fig13", 10.0)])
        rc = perf_gate.main([str(fresh), "--baseline", str(base)])
        assert rc == 1
        assert "missing" in capsys.readouterr().out

    def test_improvement_is_reported_not_failed(self, tmp_path, capsys):
        base = timings_file(tmp_path / "b", [self.entry("fig13", 10.0)])
        fresh = timings_file(tmp_path / "f", [self.entry("fig13", 2.0)])
        rc = perf_gate.main([str(fresh), "--baseline", str(base)])
        assert rc == 0
        assert "1 improved" in capsys.readouterr().out

    def test_markdown_table(self, tmp_path, capsys):
        base = timings_file(tmp_path / "b", [self.entry("fig13", 10.0)])
        fresh = timings_file(tmp_path / "f", [self.entry("fig13", 11.0)])
        rc = perf_gate.main([str(fresh), "--baseline", str(base),
                             "--markdown"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "### perf gate" in out
        assert "| fig13 | 10.00 | 11.00 | 1.10 |" in out

    def test_gate_passes_against_itself(self):
        """The committed baseline must pass its own gate (sanity: the
        schema parses and every experiment is within its band)."""
        path = REPO_ROOT / "bench-timings.json"
        if not path.exists():
            pytest.skip("bench-timings.json not generated yet")
        assert perf_gate.main([str(path),
                               "--baseline", str(path)]) == 0


class TestCommittedTimings:
    def test_committed_timings_cover_benchmark_files(self):
        """The repo-root bench-timings.json drives shard balancing;
        it must parse and give every benchmark file a usable weight."""
        path = REPO_ROOT / "bench-timings.json"
        if not path.exists():
            pytest.skip("bench-timings.json not generated yet")
        from repro.obs.timings import load_timings, timing_weights
        weights = timing_weights(load_timings(path))
        assert weights, "committed timings are empty"
        files = sorted((REPO_ROOT / "benchmarks").glob("test_*.py"))
        per_file = ci_shard.file_weights(files, weights)
        assert all(w > 0 for w in per_file.values())
