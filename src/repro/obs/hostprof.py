"""Deterministic host profiler: wall-clock self-time onto the layer DAG.

Simulated time says where the *model* spends nanoseconds; this module
says where the *simulator* spends host CPU — which Python frames burn
the wall-clock of a bench run, folded onto the same architecture
layers (``sim``, ``nvme``, ``kernel``, ...) that simlint enforces
(:func:`repro.analysis.architecture.default_manifest`).

The profiler is a :func:`sys.setprofile` hook that counts *profile
events* (function calls, returns, C calls) instead of reading a clock:
each event charges one unit to the frame on top of the shadow stack.
Event counts are a pure function of the executed code path, so a
same-seed run produces **byte-identical** collapsed stacks and layer
tables — no timer jitter, no host-speed dependence — while remaining
an excellent proxy for interpreter time (CPython's cost is dominated
by dispatch, and every dispatch-heavy region is also event-heavy).
One real wall-clock total is captured alongside for scale; it is the
single non-deterministic field and reports normalize it away.

Outputs:

* :meth:`HostProfile.collapsed` — Brendan Gregg collapsed stacks
  (``pkg.mod.func;pkg.mod.func <events>``), same format as
  :func:`repro.obs.export.collapsed_stacks`, so flamegraph.pl and
  speedscope work on host profiles too.
* :meth:`HostProfile.layer_table` / :meth:`HostProfile.render` — self
  events aggregated per architecture layer (longest-prefix module
  assignment via :meth:`Manifest.layer_of`; non-repro frames land in
  ``(external)``).

Used by ``python -m repro.bench --profile`` and
``scripts/profile_host.py``.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["HostProfile", "HostProfiler", "profile_call"]

# Frames outside the repro package aggregate here.
EXTERNAL_LAYER = "(external)"

# sys.setprofile event kinds that charge the *current* top of stack
# (C calls never push a Python frame).
_FLAT_EVENTS = ("c_call", "c_return", "c_exception")


def _frame_label(frame) -> str:
    """Stable frame label: ``module.qualname`` — no paths, no ids."""
    module = frame.f_globals.get("__name__", "?")
    code = frame.f_code
    name = getattr(code, "co_qualname", code.co_name)
    return f"{module}.{name}"


def _frame_module(frame) -> str:
    return frame.f_globals.get("__name__", "?")


@dataclass
class HostProfile:
    """One profiling pass: self-event weights per stack and module."""

    weights: Dict[str, int]          # "a;b;c" -> self events
    module_events: Dict[str, int]    # module -> self events
    total_events: int
    wall_s: float                    # the ONE non-deterministic field

    def collapsed(self) -> str:
        """Collapsed-stack lines sorted by stack — byte-stable."""
        return "".join(f"{stack} {self.weights[stack]}\n"
                       for stack in sorted(self.weights))

    def layer_table(self, manifest=None) -> Dict[str, int]:
        """Self events per architecture layer, sorted by layer name.

        ``manifest`` defaults to the repro manifest; frames whose
        module has no layer assignment fall into ``(external)``.
        """
        manifest = manifest or _default_manifest()
        out: Dict[str, int] = {}
        for module, events in self.module_events.items():
            layer = manifest.layer_of(module) or EXTERNAL_LAYER
            out[layer] = out.get(layer, 0) + events
        return dict(sorted(out.items()))

    def render(self, manifest=None) -> str:
        """Per-layer text table (events, share), largest first."""
        table = self.layer_table(manifest)
        total = max(1, self.total_events)
        lines = [f"host profile: {self.total_events} events, "
                 f"{self.wall_s:.3f}s wall"]
        lines.append(f"  {'layer':<12} {'events':>12} {'share':>7}")
        ordered = sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))
        for layer, events in ordered:
            lines.append(f"  {layer:<12} {events:>12} "
                         f"{events / total:>6.1%}")
        return "\n".join(lines)

    def to_dict(self, manifest=None, normalize: bool = False) -> dict:
        """JSON-ready dump; ``normalize`` zeroes the wall-clock field
        so same-seed dumps compare byte-identical."""
        return {
            "total_events": self.total_events,
            "wall_s": 0.0 if normalize else self.wall_s,
            "layers": self.layer_table(manifest),
            "collapsed": self.collapsed(),
        }

    def to_json(self, manifest=None, normalize: bool = False) -> str:
        return json.dumps(self.to_dict(manifest, normalize=normalize),
                          sort_keys=True, separators=(",", ":"))


def _default_manifest():
    # Deferred: keeps module import light and the friend edge local.
    from ..analysis.architecture import default_manifest
    return default_manifest()


class HostProfiler:
    """The sys.setprofile hook plus its shadow stack.

    One instance per pass; use :func:`profile_call` unless you need
    manual start/stop control.  Not reentrant and single-threaded by
    design (the simulator is too).
    """

    def __init__(self) -> None:
        self._stack: List[str] = []
        self._weights: Dict[str, int] = {}
        self._module_events: Dict[str, int] = {}
        self._modules: List[str] = []
        self._total = 0
        self._t0 = 0.0
        self._wall_s = 0.0

    # -- the hook ----------------------------------------------------------

    def _charge(self) -> None:
        if not self._stack:
            # Profiler boundary: the unwind of start() itself, seen
            # before the profiled call pushes its first frame.
            return
        self._total += 1
        key = ";".join(self._stack)
        self._weights[key] = self._weights.get(key, 0) + 1
        mod = self._modules[-1]
        self._module_events[mod] = self._module_events.get(mod, 0) + 1

    def _hook(self, frame, event: str, arg) -> None:
        if event == "call":
            self._stack.append(_frame_label(frame))
            self._modules.append(_frame_module(frame))
            self._charge()
        elif event == "return":
            self._charge()
            if self._stack:
                self._stack.pop()
                self._modules.pop()
        elif event in _FLAT_EVENTS:
            self._charge()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        # Sweep leftover cycles from earlier runs first: otherwise the
        # collector finalizes a *previous* machine's generators at an
        # arbitrary allocation point inside the profiled window,
        # injecting events that differ run to run.  A full collect also
        # resets the generation counters, so the cyclic GC's own
        # schedule is identical for every same-seed pass.
        gc.collect()
        # Wall clock is profiler metadata, never simulated time.
        self._t0 = time.perf_counter()  # simlint: ignore[SIM001]
        sys.setprofile(self._hook)

    def stop(self) -> HostProfile:
        sys.setprofile(None)
        self._wall_s = time.perf_counter() - self._t0  # simlint: ignore[SIM001]
        return HostProfile(
            weights=dict(self._weights),
            module_events=dict(self._module_events),
            total_events=self._total,
            wall_s=self._wall_s,
        )


def profile_call(fn: Callable[..., Any], *args,
                 **kwargs) -> Tuple[Any, HostProfile]:
    """Run ``fn(*args, **kwargs)`` under the profiler.

    Returns ``(result, profile)``.  The hook is removed even when the
    call raises, so a failing experiment cannot leave a global profile
    hook armed.
    """
    prof = HostProfiler()
    prof.start()
    try:
        result = fn(*args, **kwargs)
    finally:
        profile = prof.stop()
    return result, profile
