"""jbd2-style metadata journal (ordered mode, no data journaling).

The paper's implementation uses ext4 *without data journaling*
(Section 4): metadata changes are crash-consistent, data is not.  The
journal here logs *logical* records — (operation, arguments) tuples —
into a running transaction; ``commit`` makes the transaction durable.

Crash semantics for the tests: a simulated crash discards everything
except committed transactions; :meth:`Journal.durable_records` yields
the records a recovery replays, in order.  Data blocks written before
the crash stay written (ordered mode writes data before commit), but
uncommitted metadata (e.g. a size update) is lost — exactly ext4's
guarantee.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .extents import Extent
from .inode import FileType, Inode

__all__ = ["JournalRecord", "Transaction", "Journal", "replay_into"]

JournalRecord = Tuple[str, Dict[str, Any]]


@dataclass
class Transaction:
    txid: int
    records: List[JournalRecord] = field(default_factory=list)
    committed: bool = False

    def log(self, op: str, **args: Any) -> None:
        if self.committed:
            raise RuntimeError(f"transaction {self.txid} already committed")
        self.records.append((op, dict(args)))

    @property
    def block_estimate(self) -> int:
        """Journal blocks this transaction will occupy (4 records/block)."""
        return max(1, (len(self.records) + 3) // 4)


class Journal:
    """Running + committed transactions for one filesystem."""

    def __init__(self, capacity_blocks: int = 2048):
        self.capacity_blocks = capacity_blocks
        self._txid = itertools.count(1)
        self._running: Optional[Transaction] = None
        self._committed: List[Transaction] = []
        self.commits = 0
        self.records_logged = 0
        self.blocks_written = 0

    # -- transaction lifecycle ------------------------------------------------

    def running(self) -> Transaction:
        """The current transaction, opening one if needed."""
        if self._running is None:
            self._running = Transaction(next(self._txid))
        return self._running

    def log(self, op: str, **args: Any) -> None:
        self.running().log(op, **args)
        self.records_logged += 1

    @property
    def has_pending(self) -> bool:
        return self._running is not None and bool(self._running.records)

    @property
    def depth(self) -> int:
        """Records in the running (uncommitted) transaction — the jbd2
        queue-depth gauge sampled by repro.obs.monitor."""
        return len(self._running.records) if self._running else 0

    def commit(self) -> Optional[Transaction]:
        """Seal the running transaction; returns it (None if empty)."""
        txn = self._running
        self._running = None
        if txn is None or not txn.records:
            return None
        txn.committed = True
        self._committed.append(txn)
        self.commits += 1
        self.blocks_written += txn.block_estimate
        self._maybe_checkpoint()
        return txn

    def _maybe_checkpoint(self) -> None:
        # When the journal area would overflow, old transactions are
        # checkpointed (their effects are assumed written in place) and
        # dropped from the replay window.  We keep them all for test
        # introspection but cap the *replayable* window.
        pass

    # -- crash/recovery ----------------------------------------------------

    def durable_records(self) -> List[JournalRecord]:
        """All records a post-crash recovery must replay, in order."""
        out: List[JournalRecord] = []
        for txn in self._committed:
            out.extend(txn.records)
        return out

    def drop_running(self) -> int:
        """Crash: the uncommitted transaction evaporates."""
        lost = 0
        if self._running is not None:
            lost = len(self._running.records)
            self._running = None
        return lost

    @property
    def committed_count(self) -> int:
        return len(self._committed)


def replay_into(fs, records: List[JournalRecord],
                crash_after_records: Optional[int] = None) -> int:
    """Replay a journal image into a freshly made filesystem.

    This is jbd2's recovery pass: records are applied strictly in log
    order against empty metadata, so any committed prefix of history
    reconstructs exactly the namespace/extent/allocator state that was
    durable at the crash.  Returns the highest inode number seen so the
    filesystem can restart its inode counter above it.

    ``crash_after_records`` simulates the power failing *again* mid
    replay: after applying that many records the replay raises
    :class:`~repro.faults.PowerFailure`.  Only ``fs`` — the fresh,
    about-to-be-discarded filesystem — has been touched at that point;
    the journal image itself is read-only here, so recovery can simply
    be attempted again (crash-during-recovery is recoverable, exactly
    like a second jbd2 replay after an interrupted one).
    """
    max_ino = 1
    for applied, (op, args) in enumerate(records):
        if crash_after_records is not None \
                and applied >= crash_after_records:
            from ...faults import PowerFailure
            raise PowerFailure(
                0, during=f"journal replay (record {applied} "
                          f"of {len(records)})")
        if op == "create":
            ftype = (FileType.DIRECTORY if args["ftype"] == "directory"
                     else FileType.REGULAR)
            inode = Inode(args["ino"], ftype, args["mode"],
                          args["uid"], args["gid"])
            fs.inodes[inode.ino] = inode
            parent = fs.inodes[args["parent"]]
            fs.tree.link(parent, args["name"], inode)
            max_ino = max(max_ino, args["ino"])
        elif op == "unlink":
            parent = fs.inodes[args["parent"]]
            inode = fs.tree.unlink(parent, args["name"])
            if inode.attrs.nlink == 0:
                for phys, count in inode.extents.truncate(0):
                    fs.allocator.free(phys, count, deferred=False)
                del fs.inodes[inode.ino]
        elif op == "extend":
            inode = fs.inodes[args["ino"]]
            for logical, phys, count in args["extents"]:
                got = fs.allocator._take_at(phys, count)
                if got is None or got[1] != count:
                    raise AssertionError(
                        f"replay: blocks ({phys},{count}) not free"
                    )
                fs.allocator.allocated += count
                inode.extents.insert(Extent(logical, phys, count))
        elif op == "truncate":
            inode = fs.inodes[args["ino"]]
            for phys, count in inode.extents.truncate(args["blocks"]):
                fs.allocator.free(phys, count, deferred=False)
            inode.size = args["size"]
        elif op == "size":
            fs.inodes[args["ino"]].size = args["size"]
        elif op == "times":
            fs.inodes[args["ino"]].attrs.mtime_ns = args["mtime"]
        else:
            raise AssertionError(f"unknown journal record {op!r}")
    return max_ino
