"""Table 2: implementation size inventory (the reproduction analogue).

The paper's Table 2 records 517/1303/885/1496 lines added or modified
across kernel / ext4 / driver / UserLib.  The reproduction builds every
layer from scratch, so the equivalent components are whole modules of
comparable magnitude.
"""

from repro.bench import table2_implementation_size


def test_table2(experiment):
    table = experiment(table2_implementation_size)
    sizes = dict(zip(table.column("Component"),
                     table.column("Lines of code")))
    # Every component exists and is non-trivial.
    assert all(v > 300 for v in sizes.values())
    # The BypassD-specific pieces are of the paper's magnitude
    # (hundreds to low thousands of lines, not tens of thousands).
    for label, value in sizes.items():
        if "paper:" in label:
            assert 300 < value < 5000, label
