"""XRP: in-kernel storage functions with eBPF (Zhong et al., OSDI '22).

XRP attaches a BPF program to a hook in the NVMe driver's completion
path.  A chained lookup (e.g. a B-tree traversal that needs the content
of one block to find the next) enters the kernel *once*; every
subsequent hop is issued from the driver — no extra mode switches, no
VFS — paying only the resubmission hook, the BPF execution and the
device.

It accelerates exactly chained I/O: single reads still take the normal
kernel path, and it "only works with data structures that have a fixed
layout on disk" (Section 7) — here, the hop offsets must be resolvable
against the file's extent map without filesystem help.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..fs.ext4.filesystem import FsError
from ..kernel.process import O_CREAT, O_DIRECT, O_RDONLY, O_RDWR, Process
from ..kernel.syscalls import Kernel
from ..nvme.spec import Opcode
from ..sim.cpu import Thread
from .sync_io import KernelFile

__all__ = ["XRPEngine", "XRPFile"]

PAGE = 4096
SECTOR = 512


class XRPFile(KernelFile):
    """Kernel file with a BPF resubmission program attached."""

    def __init__(self, kernel: Kernel, proc: Process, fd: int,
                 engine: "XRPEngine"):
        super().__init__(kernel, proc, fd)
        self.engine = engine

    def chained_read(self, thread: Thread, offsets: List[int],
                     nbytes: int) -> Generator:
        """Read ``offsets`` in sequence, each hop resubmitted in-kernel.

        The offsets model a pointer chase: offset *k+1* is computed by
        the BPF program from the block read at offset *k*.  Returns the
        final hop's (n, data).
        """
        if not offsets:
            raise ValueError("chained read needs at least one offset")
        params = self.kernel.params
        kernel = self.kernel
        # One normal kernel entry for the first hop.
        yield from kernel._enter(thread)
        yield from thread.compute(params.vfs_ext4_ns)
        result = (0, None)
        for hop, offset in enumerate(offsets):
            n = max(0, min(nbytes, self.size - offset))
            aligned = -(-max(n, 1) // SECTOR) * SECTOR
            lba512 = self._resolve(offset)
            if hop == 0:
                data = yield from kernel.blockio.rw_bytes(
                    thread, Opcode.READ, lba512, aligned)
            else:
                # Resubmission from the driver's completion path: the
                # BPF program runs, re-queues, and the thread stays
                # asleep in the original syscall.
                yield from thread.compute(params.xrp_resubmit_ns)
                yield from thread.compute(params.xrp_bpf_exec_ns)
                data = yield from kernel.blockio.rw_bytes(
                    thread, Opcode.READ, lba512, aligned,
                    charge_layers=False)
            self.engine.hops += 1
            result = (n, data[:n] if data is not None else None)
        yield from kernel._exit(thread)
        return result

    def _resolve(self, offset: int) -> int:
        mapping = self.kernel.fs.bmap(self.inode, offset // PAGE)
        if mapping is None:
            raise FsError(f"XRP hop into hole at {offset}")
        return mapping[0] * (PAGE // SECTOR) + (offset % PAGE) // SECTOR


class XRPEngine:
    """sync-plus-BPF: plain ops use the kernel path, chains use XRP."""

    name = "xrp"

    def __init__(self, kernel: Kernel, proc: Process):
        self.kernel = kernel
        self.proc = proc
        self.hops = 0

    def open(self, thread: Thread, path: str, write: bool = False,
             create: bool = False) -> Generator:
        flags = (O_RDWR if write else O_RDONLY) | O_DIRECT
        if create:
            flags |= O_CREAT
        fd = yield from self.kernel.sys_open(self.proc, thread, path,
                                             flags)
        return XRPFile(self.kernel, self.proc, fd, self)
