"""Property tests for the log-linear histogram and the registry.

The histogram promises: exact count/sum/min/max; any reported
percentile falls in the same bucket as the exact nearest-rank
percentile of the raw samples (relative error <= 2**-sub_bits); and
merging two histograms equals recording the union of their samples.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.sim.stats import percentile as exact_percentile

samples = st.lists(st.integers(min_value=0, max_value=1 << 40),
                   min_size=1, max_size=200)
pcts = st.floats(min_value=0.001, max_value=100.0,
                 allow_nan=False, allow_infinity=False)


@settings(deadline=None, max_examples=200)
@given(samples)
def test_count_sum_min_max_exact(values):
    h = Histogram("h")
    h.record_many(values)
    assert h.count == len(values)
    assert h.sum == sum(values)
    assert h.min == min(values)
    assert h.max == max(values)


@settings(deadline=None, max_examples=200)
@given(samples, pcts)
def test_percentile_within_one_bucket(values, pct):
    h = Histogram("h")
    h.record_many(values)
    exact = int(exact_percentile(values, pct))
    reported = h.percentile(pct)
    # Same bucket as the exact sample...
    assert h._index(reported) == h._index(exact)
    # ...which bounds the relative error at 2**-sub_bits.
    assert exact <= reported
    assert reported - exact <= max(1, exact >> h.sub_bits)


@settings(deadline=None, max_examples=200)
@given(samples, pcts)
def test_quantile_bounds_bracket_exact_sample(values, pct):
    h = Histogram("h")
    h.record_many(values)
    exact = int(exact_percentile(values, pct))
    lower, upper = h.quantile_bounds(pct)
    # The exact nearest-rank sample lies inside the reported bucket...
    assert lower <= exact <= upper
    # ...and the bucket is narrow enough for the <= 1/32 contract
    # (sub_bits=5): width < lower / 2**sub_bits above the linear range.
    assert upper - lower <= max(0, lower >> h.sub_bits)
    # percentile() reports from the same bucket (clamped to max).
    assert lower <= h.percentile(pct) <= upper


@settings(deadline=None, max_examples=100)
@given(samples, samples)
def test_quantile_bounds_p999_relative_error_under_merge(left, right):
    """The exemplar-threshold contract: after any merge, the p999
    bucket's bounds stay within 1/32 relative error of the exact
    nearest-rank p999 of the union."""
    a = Histogram("a")
    a.record_many(left)
    b = Histogram("b")
    b.record_many(right)
    a.merge(b)
    exact = int(exact_percentile(left + right, 99.9))
    lower, upper = a.quantile_bounds(99.9)
    assert lower <= exact <= upper
    if exact > 0:
        assert (exact - lower) / exact <= 1.0 / (1 << a.sub_bits)
        assert (upper - exact) / exact <= 1.0 / (1 << a.sub_bits)


def test_quantile_bounds_empty_and_edge():
    h = Histogram("h")
    with pytest.raises(ValueError, match="no samples"):
        h.quantile_bounds(99.9)
    h.record_many([7, 7, 7])
    # Linear range: unit-width bucket, bounds are exact.
    assert h.quantile_bounds(50) == (7, 7)
    assert h.quantile_bounds(0) == (7, 7)
    # Above the linear range the bucket brackets the sample but is
    # NOT clamped to the observed max (thresholds need the raw lower).
    big = Histogram("big")
    big.record(1000)
    lower, upper = big.quantile_bounds(99.9)
    assert lower <= 1000 <= upper


@settings(deadline=None, max_examples=100)
@given(samples, samples)
def test_merge_equals_union(left, right):
    a = Histogram("a")
    a.record_many(left)
    b = Histogram("b")
    b.record_many(right)
    a.merge(b)
    u = Histogram("u")
    u.record_many(left + right)
    assert a.counts == u.counts
    assert a.count == u.count
    assert a.sum == u.sum
    assert a.min == u.min
    assert a.max == u.max
    assert a.summary() == u.summary()


@settings(deadline=None, max_examples=200)
@given(st.integers(min_value=0, max_value=1 << 50))
def test_bucket_bounds_roundtrip(value):
    h = Histogram("h")
    idx = h._index(value)
    lower, upper = h.bucket_bounds(idx)
    assert lower <= value <= upper
    # Bucket width respects the relative-error contract.
    assert upper - lower <= max(0, lower >> h.sub_bits)


def test_histogram_rejects_bad_input():
    h = Histogram("h")
    with pytest.raises(ValueError):
        h.record(-1)
    with pytest.raises(ValueError):
        h.record(1, n=0)
    with pytest.raises(ValueError):
        h.percentile(50)  # empty
    with pytest.raises(ValueError):
        h.merge(Histogram("other", sub_bits=4))
    with pytest.raises(ValueError):
        Histogram("h", sub_bits=0)


def test_empty_summary():
    assert Histogram("h").summary() == {"count": 0, "sum": 0}


def test_empty_histogram_contract():
    """Pinned: quantile accessors raise on empty; summary degrades."""
    h = Histogram("h")
    with pytest.raises(ValueError, match="no samples"):
        h.percentile(50)
    with pytest.raises(ValueError, match="no samples"):
        h.mean
    # Exactly these keys, no min/max/quantiles.
    assert h.summary() == {"count": 0, "sum": 0}


@settings(deadline=None, max_examples=100)
@given(samples)
def test_merge_with_empty_side_is_identity(values):
    # Non-empty ← empty: nothing changes.
    a = Histogram("a")
    a.record_many(values)
    before = (dict(a.counts), a.count, a.sum, a.min, a.max)
    a.merge(Histogram("empty"))
    assert (dict(a.counts), a.count, a.sum, a.min, a.max) == before

    # Empty ← non-empty: the empty side becomes a copy.
    b = Histogram("b")
    src = Histogram("src")
    src.record_many(values)
    b.merge(src)
    assert b.counts == src.counts
    assert (b.count, b.sum, b.min, b.max) == \
        (src.count, src.sum, src.min, src.max)
    assert b.summary() == src.summary()

    # Empty ← empty stays empty.
    e = Histogram("e")
    e.merge(Histogram("e2"))
    assert e.summary() == {"count": 0, "sum": 0}


def test_registry_create_on_first_use_and_kind_collision():
    r = MetricsRegistry()
    c = r.counter("x.count")
    assert r.counter("x.count") is c
    c.inc(3)
    assert c.value == 3
    with pytest.raises(ValueError):
        c.inc(-1)
    with pytest.raises(ValueError):
        r.gauge("x.count")
    with pytest.raises(ValueError):
        r.histogram("x.count")
    r.gauge("x.g").set(1.5)
    r.histogram("x.h").record(10)
    assert r.names() == ["x.count", "x.g", "x.h"]


def test_absorb_counters_is_idempotent():
    r = MetricsRegistry()
    snap = {"a": 3, "b": 0}
    r.absorb_counters(snap, prefix="machine.")
    r.absorb_counters(snap, prefix="machine.")
    assert r.counters_snapshot() == {"machine.a": 3, "machine.b": 0}


def test_snapshot_shape():
    r = MetricsRegistry()
    r.counter("c").inc()
    r.gauge("g").set(2.0)
    r.histogram("h").record_many([1, 2, 3])
    snap = r.snapshot()
    assert set(snap) == {"counters", "gauges", "histograms"}
    assert snap["counters"] == {"c": 1}
    assert snap["gauges"] == {"g": 2.0}
    assert snap["histograms"]["h"]["count"] == 3
