"""Unit tests for the NVMe device model."""

import pytest

from repro.hw.iommu import IOMMU
from repro.hw.pagetable import PAGE_SIZE, PageTable
from repro.hw.params import DEFAULT_PARAMS
from repro.nvme.device import DeviceBusyError, NVMeDevice
from repro.nvme.spec import AddressKind, Command, Opcode, Status
from repro.sim.engine import Simulator

VBA = 0x5000_0000_0000


def make_device(capture=True, capacity=1 << 30):
    sim = Simulator()
    iommu = IOMMU(DEFAULT_PARAMS)
    dev = NVMeDevice(sim, DEFAULT_PARAMS, iommu, devid=1,
                     capacity_bytes=capacity, capture_data=capture)
    return sim, iommu, dev


def do(sim, gen):
    return sim.run_process(gen)


class TestLBAPath:
    def test_read_latency_matches_table1(self):
        sim, _, dev = make_device(capture=False)
        qp = dev.create_queue_pair(pasid=0)

        def body():
            t0 = sim.now
            c = yield dev.submit(qp, Command(Opcode.READ, addr=0,
                                             nbytes=4096))
            return c, sim.now - t0

        completion, elapsed = do(sim, body())
        assert completion.ok
        assert abs(elapsed - 4020) <= 10  # Table 1 device time

    def test_write_read_roundtrip(self):
        sim, _, dev = make_device()
        qp = dev.create_queue_pair(pasid=0)
        payload = bytes(range(256)) * 16

        def body():
            yield dev.submit(qp, Command(Opcode.WRITE, addr=16,
                                         nbytes=4096, data=payload))
            c = yield dev.submit(qp, Command(Opcode.READ, addr=16,
                                             nbytes=4096))
            return c

        completion = do(sim, body())
        assert completion.data == payload

    def test_unwritten_blocks_read_zero(self):
        sim, _, dev = make_device()
        qp = dev.create_queue_pair(pasid=0)

        def body():
            c = yield dev.submit(qp, Command(Opcode.READ, addr=1024,
                                             nbytes=512))
            return c

        assert do(sim, body()).data == bytes(512)

    def test_out_of_range_errors(self):
        sim, _, dev = make_device(capacity=1 << 20)
        qp = dev.create_queue_pair(pasid=0)

        def body():
            c = yield dev.submit(qp, Command(Opcode.READ,
                                             addr=(1 << 20) // 512,
                                             nbytes=512))
            return c

        assert do(sim, body()).status is Status.LBA_OUT_OF_RANGE

    def test_flush(self):
        sim, _, dev = make_device()
        qp = dev.create_queue_pair(pasid=0)

        def body():
            t0 = sim.now
            c = yield dev.submit(qp, Command(Opcode.FLUSH, addr=0,
                                             nbytes=0))
            return c, sim.now - t0

        completion, elapsed = do(sim, body())
        assert completion.ok
        assert elapsed >= DEFAULT_PARAMS.flush_ns

    def test_larger_read_takes_longer(self):
        def read_time(nbytes):
            sim, _, dev = make_device(capture=False)
            qp = dev.create_queue_pair(pasid=0)

            def body():
                t0 = sim.now
                yield dev.submit(qp, Command(Opcode.READ, addr=0,
                                             nbytes=nbytes))
                return sim.now - t0

            return do(sim, body())

        assert read_time(128 * 1024) > read_time(4096) * 4


class TestVBAPath:
    def _setup(self, pages=4, writable=True):
        sim, iommu, dev = make_device(capture=False)
        pt = PageTable()
        iommu.bind_pasid(9, pt)
        for i in range(pages):
            pt.map_file_page(VBA + i * PAGE_SIZE, lba=100 + i, devid=1,
                             writable=writable)
        qp = dev.create_queue_pair(pasid=9)
        return sim, dev, qp, pt

    def test_vba_read_adds_translation_latency(self):
        sim, dev, qp, _ = self._setup()

        def body():
            t0 = sim.now
            c = yield dev.submit(qp, Command(
                Opcode.READ, addr=VBA, nbytes=4096,
                addr_kind=AddressKind.VBA))
            return c, sim.now - t0

        completion, elapsed = do(sim, body())
        assert completion.ok
        assert abs(elapsed - (4013 + 550)) <= 10

    def test_vba_write_hides_translation(self):
        """Section 4.3: write translation overlaps the data transfer."""
        sim, dev, qp, _ = self._setup()

        def body():
            t0 = sim.now
            yield dev.submit(qp, Command(
                Opcode.WRITE, addr=VBA, nbytes=4096,
                addr_kind=AddressKind.VBA))
            return sim.now - t0

        vba_elapsed = do(sim, body())

        sim2, _, dev2 = make_device(capture=False)
        qp2 = dev2.create_queue_pair(pasid=0)

        def body2():
            t0 = sim2.now
            yield dev2.submit(qp2, Command(Opcode.WRITE, addr=0,
                                           nbytes=4096))
            return sim2.now - t0

        lba_elapsed = do(sim2, body2())
        assert vba_elapsed == lba_elapsed  # no visible VBA overhead

    def test_unmapped_vba_translation_fault(self):
        sim, dev, qp, _ = self._setup(pages=1)

        def body():
            c = yield dev.submit(qp, Command(
                Opcode.READ, addr=VBA + 64 * PAGE_SIZE, nbytes=4096,
                addr_kind=AddressKind.VBA))
            return c

        completion = do(sim, body())
        assert completion.status is Status.TRANSLATION_FAULT
        assert dev.translation_faults == 1

    def test_write_to_readonly_mapping_fault(self):
        sim, dev, qp, _ = self._setup(writable=False)

        def body():
            c = yield dev.submit(qp, Command(
                Opcode.WRITE, addr=VBA, nbytes=4096,
                addr_kind=AddressKind.VBA))
            return c

        assert do(sim, body()).status is Status.TRANSLATION_FAULT

    def test_unaligned_vba_rejected(self):
        sim, dev, qp, _ = self._setup()

        def body():
            c = yield dev.submit(qp, Command(
                Opcode.READ, addr=VBA + 17, nbytes=512,
                addr_kind=AddressKind.VBA))
            return c

        assert do(sim, body()).status is Status.INVALID_FIELD

    def test_subpage_vba_read(self):
        sim, iommu, dev = make_device(capture=True)
        pt = PageTable()
        iommu.bind_pasid(9, pt)
        pt.map_file_page(VBA, lba=100, devid=1)
        qp = dev.create_queue_pair(pasid=9)
        sector = bytes([7] * 512)

        def body():
            # Write sector 3 of the page via LBA, read back via VBA.
            yield dev.submit(qp, Command(Opcode.WRITE, addr=100 * 8 + 3,
                                         nbytes=512, data=sector))
            c = yield dev.submit(qp, Command(
                Opcode.READ, addr=VBA + 3 * 512, nbytes=512,
                addr_kind=AddressKind.VBA))
            return c

        assert do(sim, body()).data == sector


class TestExclusiveClaim:
    def test_claim_blocks_other_queues(self):
        _, _, dev = make_device()
        dev.claim_exclusive("spdk-app")
        with pytest.raises(DeviceBusyError):
            dev.create_queue_pair(pasid=0)
        # The owner itself can create queues.
        dev.create_queue_pair(pasid=0, owner="spdk-app")

    def test_claim_fails_with_existing_queues(self):
        _, _, dev = make_device()
        dev.create_queue_pair(pasid=0)
        with pytest.raises(DeviceBusyError):
            dev.claim_exclusive("spdk-app")

    def test_release(self):
        _, _, dev = make_device()
        dev.claim_exclusive("a")
        with pytest.raises(DeviceBusyError):
            dev.release_exclusive("b")
        dev.release_exclusive("a")
        dev.create_queue_pair(pasid=0)


class TestQueueManagement:
    def test_delete_queue(self):
        _, _, dev = make_device()
        qp = dev.create_queue_pair(pasid=0)
        assert dev.queue_count == 1
        dev.delete_queue_pair(qp)
        assert dev.queue_count == 0
        with pytest.raises(ValueError):
            dev.delete_queue_pair(qp)

    def test_many_queues_roundrobin_served(self):
        sim, _, dev = make_device(capture=False)
        qps = [dev.create_queue_pair(pasid=0) for _ in range(4)]

        def body():
            events = []
            for qp in qps:
                for _ in range(8):
                    events.append(dev.submit(qp, Command(
                        Opcode.READ, addr=0, nbytes=4096)))
            yield sim.all_of(events)

        do(sim, body())
        assert all(qp.completed == 8 for qp in qps)
