"""Unit tests for the kernel syscall layer."""

import pytest

from repro import GiB, Machine
from repro.kernel.process import (
    O_APPEND,
    O_CREAT,
    O_DIRECT,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
)
from repro.kernel.syscalls import PermissionError_


@pytest.fixture
def m():
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)


def run(m, gen):
    return m.run_process(gen)


def test_open_creates_and_returns_fd(m):
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/x",
                                          O_RDWR | O_CREAT)
        return fd

    fd = run(m, body())
    assert fd >= 3
    assert m.fs.exists("/x")


def test_open_missing_raises(m):
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        yield from m.kernel.sys_open(proc, t, "/missing", O_RDONLY)

    with pytest.raises(Exception):
        run(m, body())


def test_permission_checks_on_open(m):
    owner = m.spawn_process(uid=1000)
    other = m.spawn_process(uid=2000)
    t1, t2 = owner.new_thread(), other.new_thread()

    def body():
        yield from m.kernel.sys_open(owner, t1, "/private",
                                     O_RDWR | O_CREAT, mode=0o600)
        # A different uid cannot open it.
        try:
            yield from m.kernel.sys_open(other, t2, "/private", O_RDONLY)
        except PermissionError_:
            return "denied"
        return "allowed"

    assert run(m, body()) == "denied"


def test_root_bypasses_permissions(m):
    owner = m.spawn_process(uid=1000)
    root = m.spawn_process(uid=0)
    t1, t2 = owner.new_thread(), root.new_thread()

    def body():
        yield from m.kernel.sys_open(owner, t1, "/private",
                                     O_RDWR | O_CREAT, mode=0o600)
        fd = yield from m.kernel.sys_open(root, t2, "/private", O_RDONLY)
        return fd

    assert run(m, body()) >= 3


def test_write_read_roundtrip_direct(m):
    proc = m.spawn_process()
    t = proc.new_thread()
    payload = bytes(range(256)) * 32  # 8 KiB

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/f",
                                          O_RDWR | O_CREAT | O_DIRECT)
        n = yield from m.kernel.sys_pwrite(proc, t, fd, 0, len(payload),
                                           payload)
        assert n == len(payload)
        n, data = yield from m.kernel.sys_pread(proc, t, fd, 0,
                                                len(payload))
        return n, data

    n, data = run(m, body())
    assert n == len(payload)
    assert data == payload


def test_write_read_roundtrip_buffered(m):
    proc = m.spawn_process()
    t = proc.new_thread()
    payload = b"hello page cache" * 100

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/f",
                                          O_RDWR | O_CREAT)
        yield from m.kernel.sys_pwrite(proc, t, fd, 10, len(payload),
                                       payload)
        n, data = yield from m.kernel.sys_pread(proc, t, fd, 10,
                                                len(payload))
        return n, data

    n, data = run(m, body())
    assert data == payload


def test_buffered_data_survives_fsync_and_cache_invalidation(m):
    proc = m.spawn_process()
    t = proc.new_thread()
    payload = b"durable" * 600

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/f",
                                          O_RDWR | O_CREAT)
        yield from m.kernel.sys_pwrite(proc, t, fd, 0, len(payload),
                                       payload)
        yield from m.kernel.sys_fsync(proc, t, fd)
        m.pagecache.invalidate_inode(m.fs.lookup("/f").ino)
        n, data = yield from m.kernel.sys_pread(proc, t, fd, 0,
                                                len(payload))
        return data

    assert run(m, body()) == payload


def test_read_beyond_eof_short(m):
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/f",
                                          O_RDWR | O_CREAT | O_DIRECT)
        yield from m.kernel.sys_pwrite(proc, t, fd, 0, 1024,
                                       bytes(1024))
        n, _ = yield from m.kernel.sys_pread(proc, t, fd, 512, 4096)
        return n

    assert run(m, body()) == 512


def test_read_from_hole_returns_zeros(m):
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/f",
                                          O_RDWR | O_CREAT | O_DIRECT)
        # Write at 8 KiB leaving a hole at [0, 8K).
        yield from m.kernel.sys_pwrite(proc, t, fd, 8192, 512,
                                       bytes([1]) * 512)
        # Hole blocks were never allocated... size covers them though.
        n, data = yield from m.kernel.sys_pread(proc, t, fd, 0, 512)
        return n, data

    n, data = run(m, body())
    assert n == 512
    assert data == bytes(512)


def test_append_mode_appends(m):
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(
            proc, t, "/log", O_WRONLY | O_CREAT | O_APPEND | O_DIRECT)
        yield from m.kernel.sys_pwrite(proc, t, fd, 0, 512, b"a" * 512)
        yield from m.kernel.sys_pwrite(proc, t, fd, 0, 512, b"b" * 512)
        return m.fs.lookup("/log").size

    assert run(m, body()) == 1024


def test_sys_append_returns_old_size(m):
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/log",
                                          O_RDWR | O_CREAT | O_DIRECT)
        off1 = yield from m.kernel.sys_append(proc, t, fd, 512,
                                              b"x" * 512)
        off2 = yield from m.kernel.sys_append(proc, t, fd, 512,
                                              b"y" * 512)
        n, data = yield from m.kernel.sys_pread(proc, t, fd, 0, 1024)
        return off1, off2, data

    off1, off2, data = run(m, body())
    assert (off1, off2) == (0, 512)
    assert data == b"x" * 512 + b"y" * 512


def test_ftruncate_shrinks_and_caps_reads(m):
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/f",
                                          O_RDWR | O_CREAT | O_DIRECT)
        yield from m.kernel.sys_pwrite(proc, t, fd, 0, 8192, b"z" * 8192)
        yield from m.kernel.sys_ftruncate(proc, t, fd, 1024)
        n, _ = yield from m.kernel.sys_pread(proc, t, fd, 0, 8192)
        return n

    assert run(m, body()) == 1024


def test_fallocate_zeroes_blocks(m):
    """Security rule (Section 4.1): newly allocated blocks read as
    zeros even if the device previously stored other users' data."""
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        # Plant secrets directly on the media where allocation begins.
        first = m.fs.sb.first_data_block
        m.device.backend.write_blocks(first * 8, 8, b"S" * 4096)
        fd = yield from m.kernel.sys_open(proc, t, "/new",
                                          O_RDWR | O_CREAT | O_DIRECT)
        yield from m.kernel.sys_fallocate(proc, t, fd, 0, 4096)
        n, data = yield from m.kernel.sys_pread(proc, t, fd, 0, 4096)
        return data

    assert run(m, body()) == bytes(4096)


def test_fsync_commits_journal_and_drains(m):
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/f",
                                          O_RDWR | O_CREAT | O_DIRECT)
        yield from m.kernel.sys_fallocate(proc, t, fd, 0, 1 << 20)
        yield from m.kernel.sys_ftruncate(proc, t, fd, 0)
        assert m.fs.allocator.deferred_blocks == 256
        yield from m.kernel.sys_fsync(proc, t, fd)
        return (m.fs.allocator.deferred_blocks,
                m.fs.journal.committed_count)

    deferred, commits = run(m, body())
    assert deferred == 0
    assert commits >= 1


def test_close_updates_timestamps(m):
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/f",
                                          O_RDWR | O_CREAT | O_DIRECT)
        yield from m.kernel.sys_pwrite(proc, t, fd, 0, 512, bytes(512))
        before = m.fs.lookup("/f").attrs.mtime_ns
        yield m.sim.timeout(10_000)
        yield from m.kernel.sys_close(proc, t, fd)
        after = m.fs.lookup("/f").attrs.mtime_ns
        return before, after

    before, after = run(m, body())
    assert after > before


def test_write_to_readonly_fd_rejected(m):
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        yield from m.kernel.sys_open(proc, t, "/f", O_RDWR | O_CREAT)
        fd = yield from m.kernel.sys_open(proc, t, "/f", O_RDONLY)
        try:
            yield from m.kernel.sys_pwrite(proc, t, fd, 0, 512,
                                           bytes(512))
        except PermissionError_:
            return "denied"
        return "allowed"

    assert run(m, body()) == "denied"


def test_unaligned_direct_io_handled(m):
    """Sub-sector direct I/O is shimmed: over-read on reads, RMW on
    writes, neighbouring bytes preserved."""
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, "/f",
                                          O_RDWR | O_CREAT | O_DIRECT)
        yield from m.kernel.sys_pwrite(proc, t, fd, 0, 4096,
                                       b"A" * 4096)
        yield from m.kernel.sys_pwrite(proc, t, fd, 100, 7, b"B" * 7)
        n, data = yield from m.kernel.sys_pread(proc, t, fd, 98, 11)
        return n, data

    n, data = run(m, body())
    assert n == 11
    assert data == b"AA" + b"B" * 7 + b"AA"


def test_stat(m):
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        yield from m.kernel.sys_open(proc, t, "/f",
                                     O_RDWR | O_CREAT, mode=0o640)
        attrs = yield from m.kernel.sys_stat(proc, t, "/f")
        return attrs

    attrs = run(m, body())
    assert attrs.mode == 0o640
    assert attrs.size == 0


def test_unlink_syscall(m):
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        yield from m.kernel.sys_open(proc, t, "/f", O_RDWR | O_CREAT)
        yield from m.kernel.sys_unlink(proc, t, "/f")
        return m.fs.exists("/f")

    assert run(m, body()) is False
