"""FaultPlan/FaultRule/FaultInjector unit behaviour: builders, the CLI
grammar, trigger evaluation and determinism."""

import pytest

from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultRule


# -- rule validation --------------------------------------------------------

def test_rule_rejects_bad_probability():
    with pytest.raises(ValueError):
        FaultRule(FaultKind.MEDIA_READ_ERROR, probability=1.5)


def test_rule_rejects_zero_based_nth():
    with pytest.raises(ValueError):
        FaultRule(FaultKind.MEDIA_READ_ERROR, nth=0)


def test_rule_that_can_never_fire_is_rejected():
    with pytest.raises(ValueError):
        FaultRule(FaultKind.MEDIA_READ_ERROR)


def test_power_failure_needs_at_ns():
    with pytest.raises(ValueError):
        FaultRule(FaultKind.POWER_FAILURE)


def test_empty_ranges_rejected():
    with pytest.raises(ValueError):
        FaultRule(FaultKind.MEDIA_READ_ERROR, nth=1, lba_range=(10, 10))
    with pytest.raises(ValueError):
        FaultRule(FaultKind.MEDIA_READ_ERROR, nth=1, window=(500, 100))


def test_max_fires_defaults():
    assert FaultRule(FaultKind.MEDIA_READ_ERROR, nth=3).max_fires == 1
    assert FaultRule(FaultKind.MEDIA_READ_ERROR, nth=3,
                     count=5).max_fires == 5
    assert FaultRule(FaultKind.MEDIA_READ_ERROR,
                     probability=0.5).max_fires is None


# -- builder ---------------------------------------------------------------

def test_builder_chains_and_plan_queries():
    plan = (FaultPlan(seed=42)
            .media_read_errors(nth=2)
            .latency_spikes(rate=0.5, extra_ns=1000)
            .dropped_completions(rate=0.1)
            .crash_at(9_000))
    assert not plan.empty
    assert plan.may_drop
    assert plan.crash_at_ns == 9_000
    kinds = [r.kind for r in plan.rules]
    assert kinds == [FaultKind.MEDIA_READ_ERROR, FaultKind.LATENCY_SPIKE,
                     FaultKind.DROP_COMPLETION, FaultKind.POWER_FAILURE]


def test_empty_plan_properties():
    plan = FaultPlan()
    assert plan.empty
    assert not plan.may_drop
    assert plan.crash_at_ns is None


# -- CLI grammar ------------------------------------------------------------

def test_parse_full_spec():
    plan = FaultPlan.parse(
        "seed=7, media_error_rate=0.001, drop_nth=5, drop_count=2,"
        "latency_spike_rate=0.01, latency_spike_ns=500000,"
        "translation_fault_nth=3, crash_at_ns=1e6")
    assert plan.seed == 7
    assert plan.crash_at_ns == 1_000_000
    by_kind = {}
    for rule in plan.rules:
        by_kind.setdefault(rule.kind, []).append(rule)
    # media_error expands to both the read and the write kind
    assert by_kind[FaultKind.MEDIA_READ_ERROR][0].probability == 0.001
    assert by_kind[FaultKind.MEDIA_WRITE_ERROR][0].probability == 0.001
    assert by_kind[FaultKind.DROP_COMPLETION][0].nth == 5
    assert by_kind[FaultKind.DROP_COMPLETION][0].count == 2
    assert by_kind[FaultKind.LATENCY_SPIKE][0].extra_ns == 500_000
    assert by_kind[FaultKind.TRANSLATION_FAULT][0].nth == 3


def test_parse_unknown_key_raises():
    with pytest.raises(ValueError, match="unknown"):
        FaultPlan.parse("seed=1,bogus_rate=0.5")


def test_parse_count_without_trigger_raises():
    with pytest.raises(ValueError, match="drop_count"):
        FaultPlan.parse("drop_count=3")


def test_parse_missing_equals_raises():
    with pytest.raises(ValueError, match="key=value"):
        FaultPlan.parse("seed")


def test_parse_empty_spec_is_inactive():
    assert FaultPlan.parse("").empty
    assert FaultPlan.parse("seed=3").empty


# -- injector trigger evaluation -------------------------------------------

def verdicts(inj, n, is_write=False, segments=None, t0=0, dt=1):
    out = []
    for i in range(n):
        out.append(inj.media_verdict(is_write,
                                     segments or [(0, 8)], t0 + i * dt))
    return out


def test_nth_trigger_fires_exactly_once():
    inj = FaultInjector(FaultPlan().media_read_errors(nth=3))
    results = verdicts(inj, 6)
    assert [term for _, term in results] == [
        None, None, FaultKind.MEDIA_READ_ERROR, None, None, None]
    assert inj.counts["media_read_error"] == 1


def test_nth_with_count_fires_consecutively():
    inj = FaultInjector(FaultPlan().media_read_errors(nth=2, count=3))
    results = verdicts(inj, 6)
    assert [term is not None for _, term in results] == [
        False, True, True, True, False, False]


def test_probability_is_deterministic_per_seed():
    def run(seed):
        inj = FaultInjector(FaultPlan(seed=seed).media_read_errors(rate=0.3))
        return [term for _, term in verdicts(inj, 50)]

    assert run(1) == run(1)
    assert run(1) != run(2)  # astronomically unlikely to collide


def test_window_filter():
    inj = FaultInjector(
        FaultPlan().media_read_errors(nth=1, count=100,
                                      window=(100, 200)))
    assert inj.media_verdict(False, [(0, 8)], 50)[1] is None
    assert inj.media_verdict(False, [(0, 8)], 150)[1] is not None
    assert inj.media_verdict(False, [(0, 8)], 200)[1] is None


def test_lba_range_filter():
    inj = FaultInjector(
        FaultPlan().media_read_errors(nth=1, count=100,
                                      lba=(100, 200)))
    assert inj.media_verdict(False, [(0, 8)], 0)[1] is None
    # overlapping segment triggers
    assert inj.media_verdict(False, [(96, 8)], 0)[1] is not None
    # adjacent-but-not-overlapping does not
    assert inj.media_verdict(False, [(200, 8)], 0)[1] is None


def test_write_rule_ignores_reads():
    inj = FaultInjector(FaultPlan().media_write_errors(nth=1))
    assert inj.media_verdict(False, [(0, 8)], 0)[1] is None
    spike, term = inj.media_verdict(True, [(0, 8)], 0)
    assert term is FaultKind.MEDIA_WRITE_ERROR


def test_latency_spikes_accumulate_and_do_not_terminate():
    plan = (FaultPlan()
            .latency_spikes(nth=1, count=10, extra_ns=100)
            .latency_spikes(nth=1, count=10, extra_ns=40))
    inj = FaultInjector(plan)
    spike, term = inj.media_verdict(False, [(0, 8)], 0)
    assert spike == 140
    assert term is None


def test_first_terminal_rule_wins():
    plan = (FaultPlan()
            .dropped_completions(nth=1)
            .media_read_errors(nth=1, count=10))
    inj = FaultInjector(plan)
    _, term = inj.media_verdict(False, [(0, 8)], 0)
    assert term is FaultKind.DROP_COMPLETION


def test_translation_fault_query_separate_from_media():
    inj = FaultInjector(FaultPlan().translation_faults(nth=2))
    assert not inj.translation_fault(0)
    assert inj.translation_fault(1)
    assert not inj.translation_fault(2)
    # media queries were never affected
    assert inj.media_verdict(False, [(0, 8)], 3)[1] is None


def test_summary_keeps_zero_kinds():
    inj = FaultInjector(FaultPlan().media_read_errors(nth=1))
    summary = inj.summary()
    assert set(summary) == {k.value for k in FaultKind}
    assert all(v == 0 for v in summary.values())
    inj.media_verdict(False, [(0, 8)], 0)
    assert inj.summary()["media_read_error"] == 1
