"""Figure 10: aggregate write bandwidth when the device is shared.

Paper: there are no SPDK bars (it cannot share a device); with BypassD
every process gets direct access, so aggregate throughput scales with
the process count and beats the kernel paths until the device
saturates.
"""

import pytest

from repro.bench import fig10_device_sharing
from repro.machine import Machine
from repro.nvme.device import DeviceBusyError


def series(table, engine):
    return {procs: mbps for eng, procs, mbps in table.rows
            if eng == engine}


def test_fig10(experiment):
    table = experiment(fig10_device_sharing)
    byp = series(table, "bypassd")
    sync = series(table, "sync")

    # Scaling with processes until device saturation.
    assert byp[4] > 2.5 * byp[1]
    assert byp[16] >= byp[8] * 0.9
    # BypassD leads the kernel paths at low process counts.
    for procs in (1, 2, 4):
        assert byp[procs] > sync[procs]


def test_fig10_no_spdk_bars():
    """The reason the figure has no SPDK bars, demonstrated."""
    from repro.baselines.spdk import SPDKEngine

    m = Machine(capacity_bytes=1 << 30, memory_bytes=256 << 20)
    SPDKEngine(m.sim, m.device, m.spawn_process())
    with pytest.raises(DeviceBusyError):
        SPDKEngine(m.sim, m.device, m.spawn_process())
