"""Revocation: the Section 3.6 / 4.5.2 state machine, end to end."""

import pytest

from repro import GiB, Machine
from repro.kernel.process import O_CREAT, O_DIRECT, O_RDWR


@pytest.fixture
def m():
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)


def setup_direct_file(m, path="/shared", size=1 << 20):
    proc = m.spawn_process("direct")
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, path, write=True, create=True)
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0, size)
        return f

    f = m.run_process(body())
    return proc, lib, t, f


def test_kernel_open_revokes_direct_access(m):
    proc, lib, t, f = setup_direct_file(m)
    vba = f.state.vba
    assert proc.aspace.page_table.walk(vba).present

    other = m.spawn_process("kernel-user")
    t2 = other.new_thread()

    def kernel_open():
        yield from m.kernel.sys_open(other, t2, "/shared",
                                     O_RDWR | O_DIRECT)

    m.run_process(kernel_open())
    # FTEs are gone from the first process's page table.
    assert not proc.aspace.page_table.walk(vba).present
    assert m.bypassd.revocations == 1
    assert m.fs.lookup("/shared").bypass_revoked


def test_revoked_io_falls_back_to_kernel(m):
    """The five-step fallback dance: fault -> re-fmap -> VBA 0 ->
    kernel interface."""
    proc, lib, t, f = setup_direct_file(m)
    other = m.spawn_process()
    t2 = other.new_thread()

    def kernel_open():
        yield from m.kernel.sys_open(other, t2, "/shared",
                                     O_RDWR | O_DIRECT)

    m.run_process(kernel_open())

    def read_after_revoke():
        n, data = yield from f.pread(t, 0, 4096)
        return n

    n = m.run_process(read_after_revoke())
    assert n == 4096                 # I/O still succeeds...
    assert not f.using_direct_path   # ...through the kernel
    assert lib.faults_handled == 1
    assert lib.kernel_fallbacks == 1


def test_data_correct_across_revocation(m):
    proc, lib, t, f = setup_direct_file(m)
    payload = b"R" * 4096

    def write_direct():
        yield from f.pwrite(t, 0, 4096, payload)

    m.run_process(write_direct())

    other = m.spawn_process()
    t2 = other.new_thread()

    def kernel_open():
        yield from m.kernel.sys_open(other, t2, "/shared",
                                     O_RDWR | O_DIRECT)

    m.run_process(kernel_open())

    def read_back():
        n, data = yield from f.pread(t, 0, 4096)
        return data

    assert m.run_process(read_back()) == payload


def test_fallback_latency_is_kernel_latency(m):
    mach = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                   capture_data=False)
    proc, lib, t, f = setup_direct_file(mach)

    def timed_read():
        t0 = mach.now
        yield from f.pread(t, 0, 4096)
        return mach.now - t0

    direct_lat = mach.run_process(timed_read())
    other = mach.spawn_process()
    t2 = other.new_thread()

    def kernel_open():
        yield from mach.kernel.sys_open(other, t2, "/shared",
                                        O_RDWR | O_DIRECT)

    mach.run_process(kernel_open())
    mach.run_process(timed_read())      # fault + fallback read
    fallback_lat = mach.run_process(timed_read())
    assert direct_lat < 6000
    assert fallback_lat > 7500          # full kernel stack now


def test_direct_access_resumes_after_quiesce(m):
    proc, lib, t, f = setup_direct_file(m)
    other = m.spawn_process()
    t2 = other.new_thread()

    def kernel_open_close():
        fd = yield from m.kernel.sys_open(other, t2, "/shared",
                                          O_RDWR | O_DIRECT)
        yield from m.kernel.sys_close(other, t2, fd)

    m.run_process(kernel_open_close())

    def read_and_close():
        yield from f.pread(t, 0, 512)   # falls back
        yield from f.close(t)

    m.run_process(read_and_close())

    # Everything quiesced: a fresh open gets the direct path again.
    proc2 = m.spawn_process()
    lib2 = m.userlib(proc2)
    t3 = proc2.new_thread()

    def fresh_open():
        f2 = yield from lib2.open(t3, "/shared", write=True)
        return f2.using_direct_path

    assert m.run_process(fresh_open()) is True


def test_multi_process_metadata_writers_revoked(m):
    proc, lib, t, f = setup_direct_file(m)
    inode = m.fs.lookup("/shared")
    m.bypassd.note_metadata_write(inode, pasid=proc.pasid)
    assert not inode.bypass_revoked
    m.bypassd.note_metadata_write(inode, pasid=proc.pasid + 1)
    assert inode.bypass_revoked
    assert m.bypassd.revocations == 1


def test_unlink_revokes(m):
    proc, lib, t, f = setup_direct_file(m)
    vba = f.state.vba
    root = m.spawn_process(uid=0)
    t2 = root.new_thread()

    def unlink():
        yield from m.kernel.sys_unlink(root, t2, "/shared")

    m.run_process(unlink())
    assert not proc.aspace.page_table.walk(vba).present


def test_deferred_block_reuse_guards_revocation_race(m):
    """Section 3.6/5.3: blocks freed from a revoked file cannot be
    reallocated to another file before a sync point."""
    proc, lib, t, f = setup_direct_file(m, size=64 * 4096)

    def shrink():
        yield from m.kernel.sys_ftruncate(proc, t, f.state.fd, 0)

    m.run_process(shrink())
    assert m.fs.allocator.deferred_blocks == 64
    # Another file cannot grab those blocks yet.
    other = m.spawn_process()
    t2 = other.new_thread()

    def grow_other():
        fd = yield from m.kernel.sys_open(other, t2, "/other",
                                          O_RDWR | O_CREAT | O_DIRECT)
        yield from m.kernel.sys_fallocate(other, t2, fd, 0, 4096)
        return m.fs.lookup("/other").extents.physical_runs()

    runs = m.run_process(grow_other())
    freed_start = 0  # the deferred pool holds the old blocks
    deferred = set()
    for start, count in m.fs.allocator._deferred:
        deferred.update(range(start, start + count))
    got = {b for s, c in runs for b in range(s, s + c)}
    assert not (got & deferred)
