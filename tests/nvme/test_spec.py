"""Unit tests for NVMe command/completion structures."""

import pytest

from repro.nvme.spec import (
    AddressKind,
    Command,
    Completion,
    Opcode,
    Status,
)


class TestCommand:
    def test_defaults(self):
        cmd = Command(Opcode.READ, addr=0, nbytes=512)
        assert cmd.addr_kind is AddressKind.LBA
        assert not cmd.is_write
        assert cmd.cid > 0

    def test_unique_cids(self):
        a = Command(Opcode.READ, addr=0, nbytes=512)
        b = Command(Opcode.READ, addr=0, nbytes=512)
        assert a.cid != b.cid

    def test_write_flag(self):
        assert Command(Opcode.WRITE, addr=0, nbytes=512,
                       data=bytes(512)).is_write

    def test_zero_size_io_rejected(self):
        with pytest.raises(ValueError):
            Command(Opcode.READ, addr=0, nbytes=0)

    def test_negative_addr_rejected(self):
        with pytest.raises(ValueError):
            Command(Opcode.READ, addr=-1, nbytes=512)

    def test_lba_alignment_enforced(self):
        with pytest.raises(ValueError):
            Command(Opcode.READ, addr=0, nbytes=100)

    def test_vba_byte_granular_size_allowed_at_construction(self):
        # Device-side validation handles VBA alignment; construction
        # only enforces LBA-kind alignment.
        Command(Opcode.READ, addr=0, nbytes=512,
                addr_kind=AddressKind.VBA)

    def test_flush_needs_no_size(self):
        cmd = Command(Opcode.FLUSH, addr=0, nbytes=0)
        assert cmd.opcode is Opcode.FLUSH


class TestCompletion:
    def test_ok(self):
        assert Completion(cid=1, status=Status.SUCCESS).ok
        assert not Completion(cid=1,
                              status=Status.TRANSLATION_FAULT).ok

    def test_status_ok_property(self):
        assert Status.SUCCESS.ok
        assert not Status.LBA_OUT_OF_RANGE.ok
        assert not Status.INVALID_FIELD.ok

    def test_fault_reason_carried(self):
        c = Completion(cid=1, status=Status.TRANSLATION_FAULT,
                       fault_reason="DevID mismatch")
        assert "DevID" in c.fault_reason
