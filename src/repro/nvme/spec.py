"""NVMe command/completion structures and status codes.

Only the slice of the NVMe 1.4 protocol the experiments exercise is
modelled: I/O reads and writes, flush, and the BypassD extension where
a command's address field carries a Virtual Block Address that the
device must have translated by the IOMMU before accessing media
(paper Sections 3.3, 4.3).
"""

from __future__ import annotations

import enum
import errno as _errno
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "Opcode",
    "Status",
    "AddressKind",
    "Command",
    "Completion",
    "LBA_SIZE",
    "DEVICE_PAGE_SIZE",
]

LBA_SIZE = 512
DEVICE_PAGE_SIZE = 4096

_cid_counter = itertools.count(1)


class Opcode(enum.Enum):
    READ = "read"
    WRITE = "write"
    FLUSH = "flush"


class Status(enum.Enum):
    SUCCESS = 0x0
    INVALID_FIELD = 0x2
    # Command Abort Requested: the host timed out and aborted the
    # command (NVMe 1.4 generic status 0x7).
    ABORTED = 0x7
    LBA_OUT_OF_RANGE = 0x80
    # Media and Data Integrity errors (NVMe status code type 2): the
    # fault injector uses these for device-side media failures.
    MEDIA_WRITE_FAULT = 0x280
    MEDIA_READ_ERROR = 0x281
    # BypassD: the IOMMU refused the VBA translation; the SSD returns an
    # error code to the process without touching media (Section 5.3).
    TRANSLATION_FAULT = 0x1C1

    @property
    def ok(self) -> bool:
        return self is Status.SUCCESS

    @property
    def retryable(self) -> bool:
        """Transient by NVMe semantics: a host-side retry may succeed.

        Translation faults are *not* retryable here — the BypassD
        recovery for those is re-issuing fmap(), not resubmitting the
        same command (Section 3.6).
        """
        return self in (Status.MEDIA_READ_ERROR, Status.MEDIA_WRITE_FAULT,
                        Status.ABORTED)


class AddressKind(enum.Enum):
    LBA = "lba"  # classic: logical block address, 512 B units
    VBA = "vba"  # BypassD: virtual block address, byte-granular


@dataclass(slots=True)
class Command:
    """One submission queue entry."""

    opcode: Opcode
    addr: int                      # LBA (blocks) or VBA (bytes)
    nbytes: int
    addr_kind: AddressKind = AddressKind.LBA
    buffer_iova: int = 0           # host DMA target/source
    data: Optional[bytes] = None   # payload for writes (None = timing-only)
    cid: int = field(default_factory=lambda: next(_cid_counter))
    # Host trace context (trace_id, span_id) stamped by the submitter
    # so device-side phase spans parent under the host's wait span.
    # Carries no timing information; None when tracing is off.
    trace: Optional[Tuple[int, int]] = None
    # Doorbell timestamp (sim ns) set by NVMeDevice.submit; the delta
    # to fetch start is the arbiter queueing delay the device stamps
    # as a wait attr.  Never read by timing decisions.
    submit_ns: int = -1

    def __post_init__(self) -> None:
        if self.opcode is not Opcode.FLUSH:
            if self.nbytes <= 0:
                raise ValueError("I/O command needs a positive size")
            if self.addr < 0:
                raise ValueError("negative address")
            if (self.addr_kind is AddressKind.LBA
                    and self.nbytes % LBA_SIZE):
                raise ValueError(
                    f"LBA I/O must be {LBA_SIZE}-byte aligned, got {self.nbytes}"
                )

    @property
    def is_write(self) -> bool:
        return self.opcode is Opcode.WRITE


@dataclass(slots=True)
class Completion:
    """One completion queue entry."""

    cid: int
    status: Status
    data: Optional[bytes] = None   # read payload (None = timing-only)
    fault_reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status.ok

    @property
    def errno(self) -> int:
        """The negative errno a POSIX layer reports for this CQE
        (0 on success); what libaio puts in ``io_event.res`` and the
        syscall layer returns as ``-EIO`` and friends."""
        if self.status.ok:
            return 0
        if self.status is Status.INVALID_FIELD:
            return -_errno.EINVAL
        if self.status is Status.TRANSLATION_FAULT:
            return -_errno.EFAULT
        return -_errno.EIO
