"""Processes, address spaces and file descriptors.

Each process owns a page table (identified by a PASID, as with Shared
Virtual Addressing) and a virtual-address region allocator.  BypassD
attaches file-table subtrees into these page tables at PMD/PUD
granularity, so the region allocator hands out regions aligned to the
attach granularity (Section 4.1).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Set

from ..hw.pagetable import PMD_SPAN, PUD_SPAN, PageTable
from ..sim.cpu import CPUSet, Thread

__all__ = [
    "O_RDONLY",
    "O_WRONLY",
    "O_RDWR",
    "O_CREAT",
    "O_DIRECT",
    "O_APPEND",
    "AddressSpace",
    "FileDescription",
    "Process",
]

O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_APPEND = 0o2000
O_DIRECT = 0o40000

_ACCESS_MASK = 0o3


class AddressSpace:
    """Page table + VA allocator for one process."""

    _FMAP_BASE = 0x5000_0000_0000  # distinct region for file mappings
    _MMAP_BASE = 0x2000_0000_0000

    def __init__(self, pasid: int):
        self.pasid = pasid
        self.page_table = PageTable()
        self._next_fmap_va = self._FMAP_BASE
        self._next_mmap_va = self._MMAP_BASE

    def alloc_fmap_region(self, size: int) -> int:
        """Reserve VA space for a file mapping.

        The region is sized and aligned to the page-table attach
        granularity: whole PMDs (2 MB) for files up to 1 GB, whole PUDs
        (1 GB) beyond, so cached file-table subtrees can be linked with
        pointer updates.
        """
        if size <= 0:
            raise ValueError("empty mapping")
        align = PMD_SPAN if size <= PUD_SPAN else PUD_SPAN
        length = -(-size // align) * align
        base = -(-self._next_fmap_va // align) * align
        self._next_fmap_va = base + length
        return base

    def alloc_mmap_region(self, size: int) -> int:
        base = self._next_mmap_va
        pages = -(-size // 4096)
        self._next_mmap_va += pages * 4096
        return base


class FileDescription:
    """An open file: inode reference, flags, offset."""

    def __init__(self, fd: int, path: str, inode, flags: int):
        self.fd = fd
        self.path = path
        self.inode = inode
        self.flags = flags
        self.offset = 0
        # BypassD-side state, managed by UserLib:
        self.vba = 0                 # starting VBA if fmap()ed, else 0
        self.accessed = False
        self.modified = False

    @property
    def readable(self) -> bool:
        return (self.flags & _ACCESS_MASK) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & _ACCESS_MASK) in (O_WRONLY, O_RDWR)

    @property
    def direct(self) -> bool:
        return bool(self.flags & O_DIRECT)

    @property
    def append_mode(self) -> bool:
        return bool(self.flags & O_APPEND)


class Process:
    """A user process: credentials, address space, descriptors, threads."""

    _pids = itertools.count(100)
    _pasids = itertools.count(1)

    def __init__(self, cpus: CPUSet, uid: int = 1000,
                 gids: Optional[Set[int]] = None, name: str = "",
                 chroot: str = ""):
        self.pid = next(self._pids)
        self.name = name or f"proc{self.pid}"
        self.uid = uid
        self.gids = set(gids) if gids else {uid}
        self.aspace = AddressSpace(pasid=next(self._pasids))
        self.cpus = cpus
        self.fds: Dict[int, FileDescription] = {}
        self._next_fd = 3
        self.threads: list = []
        # Mount-namespace root (container isolation, paper Section 5.2):
        # every path the process names is resolved under this prefix.
        self.chroot = chroot.rstrip("/")

    def resolve_path(self, path: str) -> str:
        """Apply the process's mount namespace to an absolute path."""
        if not path.startswith("/"):
            raise ValueError(f"path must be absolute: {path!r}")
        return (self.chroot + path) if self.chroot else path

    @property
    def pasid(self) -> int:
        return self.aspace.pasid

    def new_thread(self, name: str = "") -> Thread:
        thread = self.cpus.thread(name or f"{self.name}-t{len(self.threads)}")
        self.threads.append(thread)
        return thread

    def install_fd(self, path: str, inode, flags: int) -> FileDescription:
        fdesc = FileDescription(self._next_fd, path, inode, flags)
        self.fds[self._next_fd] = fdesc
        self._next_fd += 1
        return fdesc

    def get_fd(self, fd: int) -> FileDescription:
        try:
            return self.fds[fd]
        except KeyError:
            raise OSError(f"bad file descriptor {fd}") from None

    def drop_fd(self, fd: int) -> FileDescription:
        fdesc = self.get_fd(fd)
        del self.fds[fd]
        return fdesc
