"""Span tracing: where did each nanosecond of an operation go?

A :class:`Tracer` records hierarchical spans against simulated time.
Models open spans around their phases — UserLib around an operation,
the kernel around its layers, the device around media/transfer — and
analysis code aggregates them into the user/kernel/device breakdowns
of Table 1 and Figure 7, *measured* rather than recomputed from
constants.

Spans form trees.  Every span carries

* ``span_id`` — unique within the tracer, also the ``begin()`` token;
* ``parent_id`` — the enclosing span's id, or 0 for a root;
* ``trace_id`` — the id of the root span of its tree, so all spans of
  one logical operation (a ``pread``, an ``fsync``) share one value;
* ``tid`` — the :class:`~repro.sim.cpu.Thread` that opened it (or -1
  for spans opened outside any thread, e.g. inside the device model);
* ``attrs`` — optional ``(key, value)`` pairs.

Parenting is automatic for host-side code: ``begin(..., thread=th)``
nests the new span under the thread's innermost open span.  The device
model runs in daemon processes with no thread context, so host layers
*stamp* the in-flight :class:`~repro.nvme.spec.Command` with their
current ``(trace_id, span_id)`` via :meth:`Tracer.stamp`; the device
then passes ``parent=cmd.trace`` to parent its media/transfer phases
under the host's wait span.

Tracing never advances simulated time — with tracing on or off the
same seed produces a byte-identical timeline.  It is opt-in and
zero-cost when disabled: the module-level ``NULL_TRACER`` swallows
everything.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "TraceError", "Tracer", "NullTracer", "NULL_TRACER",
           "WAIT_PREFIX", "WAIT_KINDS"]

# Wait-state attribute namespace.  A span whose interval includes time
# spent *waiting* (rather than doing work) carries one attr per wait
# kind: ``("wait.<kind>", total_ns)``.  Attrs are excluded from
# tree_fingerprint's canonical form, so stamping waits never churns
# golden fingerprints; exporters carry them through to Perfetto args
# and obs.attribution folds them into per-op waterfalls.
WAIT_PREFIX = "wait."

# The closed catalogue of wait kinds the models stamp.  Attribution
# and diff tooling iterate this for deterministic ordering.
WAIT_KINDS = (
    "sq_full",          # userlib stalled on a full submission queue
    "arbiter",          # command queued at the NVMe arbiter pre-fetch
    "softirq",          # completion sat in softirq/CQ backlog
    "inode_lock",       # blocked on the inode write lock (i_rwsem)
    "dirty_writeback",  # pagecache eviction forced dirty writeback
    "journal_commit",   # fsync waiting on the ext4 journal commit
    "retry_backoff",    # backoff gap between device command attempts
)


class TraceError(ValueError):
    """Raised for malformed spans (e.g. a span that ends before it
    starts) at :meth:`Tracer.end`/:meth:`Tracer.record` time, with the
    operation's trace id in the message."""


@dataclass(frozen=True, slots=True)
class Span:
    category: str     # "op" | "syscall" | "kernel" | "device" | "nvme" | ...
    label: str
    start_ns: int
    end_ns: int
    span_id: int = 0
    parent_id: int = 0
    trace_id: int = 0
    tid: int = -1
    attrs: Tuple[Tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.end_ns < self.start_ns:
            raise ValueError(f"span ends before it starts: {self}")

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def is_root(self) -> bool:
        return self.parent_id == 0


class _OpenSpan:
    """Mutable record of a begun-but-not-ended span."""

    __slots__ = ("category", "label", "start_ns", "span_id", "parent_id",
                 "trace_id", "tid", "attrs", "stack_key", "waits")

    def __init__(self, category, label, start_ns, span_id, parent_id,
                 trace_id, tid, attrs, stack_key):
        self.category = category
        self.label = label
        self.start_ns = start_ns
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.tid = tid
        self.attrs = attrs
        self.stack_key = stack_key
        self.waits = None        # lazily a {kind: ns} dict


class NullTracer:
    """Does nothing, costs (almost) nothing."""

    enabled = False

    @contextmanager
    def span(self, category: str, label: str = "", *,
             thread=None, parent=None, attrs=None) -> Iterator[None]:
        yield

    def begin(self, category: str, label: str = "", *,
              thread=None, parent=None, attrs=None) -> int:
        return 0

    def end(self, token: int) -> None:
        pass

    def record(self, category: str, label: str, start_ns: int,
               end_ns: int, *, thread=None, parent=None,
               attrs=None) -> None:
        pass

    def current(self, thread=None) -> Optional[Tuple[int, int]]:
        return None

    def stamp(self, cmd, *, thread=None, parent=None) -> None:
        pass

    def add_wait(self, kind: str, ns: int, *, thread=None,
                 token=None) -> None:
        pass


class Tracer:
    """Collects hierarchical spans against a simulator clock."""

    enabled = True

    def __init__(self, sim):
        self.sim = sim
        self.spans: List[Span] = []
        self._open: Dict[int, _OpenSpan] = {}
        # Per-thread stacks of open spans, keyed by Thread.tid (a
        # deterministic identity — see simlint SIM010).
        self._stacks: Dict[int, List[_OpenSpan]] = {}
        self._next_id = 1

    # -- context resolution --------------------------------------------------

    def current(self, thread=None) -> Optional[Tuple[int, int]]:
        """The innermost open ``(trace_id, span_id)`` on ``thread``."""
        if thread is None:
            return None
        stack = self._stacks.get(thread.tid)
        if not stack:
            return None
        top = stack[-1]
        return (top.trace_id, top.span_id)

    def stamp(self, cmd, *, thread=None, parent=None) -> None:
        """Attach the current trace context to an NVMe command so the
        device can parent its phase spans under the host's wait span."""
        ctx = parent if parent is not None else self.current(thread)
        if ctx is not None:
            cmd.trace = ctx

    def add_wait(self, kind: str, ns: int, *, thread=None,
                 token=None) -> None:
        """Accumulate ``ns`` of wait time of ``kind`` onto an open span.

        The target is the span for ``token`` if given, else the
        innermost open span on ``thread``.  Waits surface as
        ``("wait.<kind>", ns)`` attrs when the span ends; stamping is
        observer-side only — it never touches simulated time, and a
        missing target is silently ignored (instrumentation points may
        run before any span is open, e.g. untraced warm-up paths)."""
        if ns <= 0:
            return
        rec: Optional[_OpenSpan] = None
        if token is not None:
            rec = self._open.get(token)
        elif thread is not None:
            stack = self._stacks.get(thread.tid)
            if stack:
                rec = stack[-1]
        if rec is None:
            return
        if rec.waits is None:
            rec.waits = {}
        rec.waits[kind] = rec.waits.get(kind, 0) + int(ns)

    def _resolve(self, span_id: int, thread, parent) -> Tuple[int, int, int]:
        """Return (parent_id, trace_id, tid) for a new span."""
        tid = thread.tid if thread is not None else -1
        if parent is not None:
            trace_id, parent_id = parent
            return parent_id, trace_id, tid
        if thread is not None:
            stack = self._stacks.get(tid)
            if stack:
                top = stack[-1]
                return top.span_id, top.trace_id, tid
        return 0, span_id, tid

    # -- recording -----------------------------------------------------------

    def record(self, category: str, label: str, start_ns: int,
               end_ns: int, *, thread=None, parent=None,
               attrs=None) -> None:
        span_id = self._next_id
        self._next_id += 1
        parent_id, trace_id, tid = self._resolve(span_id, thread, parent)
        if end_ns < start_ns:
            raise TraceError(
                f"span {category}/{label} (trace {trace_id}) ends before "
                f"it starts: end_ns={end_ns} < start_ns={start_ns}"
            )
        self.spans.append(Span(category, label, start_ns, end_ns,
                               span_id, parent_id, trace_id, tid,
                               tuple(attrs) if attrs else ()))

    def begin(self, category: str, label: str = "", *,
              thread=None, parent=None, attrs=None) -> int:
        span_id = self._next_id
        self._next_id += 1
        parent_id, trace_id, tid = self._resolve(span_id, thread, parent)
        rec = _OpenSpan(category, label, self.sim.now, span_id,
                        parent_id, trace_id, tid,
                        tuple(attrs) if attrs else (),
                        tid if thread is not None else None)
        self._open[span_id] = rec
        if rec.stack_key is not None:
            self._stacks.setdefault(rec.stack_key, []).append(rec)
        return span_id

    def end(self, token: int) -> None:
        rec = self._open.pop(token, None)
        if rec is None:
            raise TraceError(f"end() of unknown span token {token}")
        if rec.stack_key is not None:
            stack = self._stacks.get(rec.stack_key)
            if stack is not None:
                for i in range(len(stack) - 1, -1, -1):
                    if stack[i] is rec:
                        del stack[i]
                        break
        end_ns = self.sim.now
        if end_ns < rec.start_ns:
            raise TraceError(
                f"span {rec.category}/{rec.label} (trace {rec.trace_id}) "
                f"ends before it starts: end_ns={end_ns} < "
                f"start_ns={rec.start_ns}"
            )
        attrs = rec.attrs
        if rec.waits:
            attrs = attrs + tuple(
                (WAIT_PREFIX + kind, ns)
                for kind, ns in sorted(rec.waits.items()))
        self.spans.append(Span(rec.category, rec.label, rec.start_ns,
                               end_ns, rec.span_id, rec.parent_id,
                               rec.trace_id, rec.tid, attrs))

    @contextmanager
    def span(self, category: str, label: str = "", *,
             thread=None, parent=None, attrs=None) -> Iterator[None]:
        """For code that cannot yield between begin and end.  Model
        generators should use begin()/end() around their yields."""
        token = self.begin(category, label, thread=thread, parent=parent,
                           attrs=attrs)
        try:
            yield
        finally:
            self.end(token)

    # -- analysis ------------------------------------------------------------

    def total_ns(self, category: str,
                 label: Optional[str] = None) -> int:
        return sum(s.duration_ns for s in self.spans
                   if s.category == category
                   and (label is None or s.label == label))

    def by_category(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.spans:
            out[s.category] = out.get(s.category, 0) + s.duration_ns
        return out

    def by_label(self, category: str) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.spans:
            if s.category == category:
                out[s.label] = out.get(s.label, 0) + s.duration_ns
        return out

    def between(self, t0: int, t1: int) -> List[Span]:
        return [s for s in self.spans
                if s.start_ns >= t0 and s.end_ns <= t1]

    def traces(self) -> Dict[int, List[Span]]:
        """Spans grouped by trace id, in recording order."""
        out: Dict[int, List[Span]] = {}
        for s in self.spans:
            out.setdefault(s.trace_id, []).append(s)
        return out

    def clear(self) -> None:
        """Drop recorded spans (open spans keep accumulating)."""
        self.spans.clear()

    def __len__(self) -> int:
        return len(self.spans)


NULL_TRACER = NullTracer()
