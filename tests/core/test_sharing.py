"""Device and file sharing between processes (Sections 4.5, 6.3)."""

import pytest

from repro import GiB, Machine


@pytest.fixture
def m():
    return Machine(capacity_bytes=2 * GiB, memory_bytes=256 << 20,
                   capture_data=False)


def test_multiple_processes_share_device_directly(m):
    """Figure 10's premise: unlike SPDK, many processes can each have
    their own queues on one device."""
    results = []
    spawned = []
    for i in range(4):
        proc = m.spawn_process(f"p{i}")
        lib = m.userlib(proc)
        t = proc.new_thread()

        def body(lib=lib, t=t, i=i):
            f = yield from lib.open(t, f"/file{i}", write=True,
                                    create=True)
            yield from m.kernel.sys_fallocate(m_proc(lib), t,
                                              f.state.fd, 0, 1 << 20)
            lat = []
            for k in range(16):
                t0 = m.now
                yield from f.pwrite(t, (k * 4096) % (1 << 20), 4096)
                lat.append(m.now - t0)
            results.append(sum(lat) / len(lat))

        def m_proc(lib):
            return lib.proc

        spawned.append(m.spawn(t, body()))
    m.run()
    for sp in spawned:
        assert sp.triggered
        _ = sp.value
    assert len(results) == 4
    # All processes used the direct path on the same device.
    assert m.device.queue_count >= 4
    # Fairness: nobody got starved (within 2x of each other).
    assert max(results) < 2 * min(results)


def test_spdk_cannot_share(m):
    """SPDK claims the device exclusively; a second user fails."""
    from repro.baselines.spdk import SPDKEngine
    from repro.nvme.device import DeviceBusyError

    p1 = m.spawn_process()
    SPDKEngine(m.sim, m.device, p1)
    p2 = m.spawn_process()
    with pytest.raises(DeviceBusyError):
        SPDKEngine(m.sim, m.device, p2)
    # Even the kernel path is locked out.
    with pytest.raises(DeviceBusyError):
        m.device.create_queue_pair(pasid=0)


def test_two_processes_read_same_file_directly(m):
    mach = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    writer = mach.spawn_process("writer")
    wlib = mach.userlib(writer)
    wt = writer.new_thread()

    def write_body():
        f = yield from wlib.open(wt, "/shared", write=True, create=True)
        yield from f.append(wt, 4096, b"W" * 4096)
        yield from f.close(wt)

    mach.run_process(write_body())

    outs = []
    spawned = []
    for i in range(3):
        proc = mach.spawn_process(f"reader{i}")
        lib = mach.userlib(proc)
        t = proc.new_thread()

        def body(lib=lib, t=t):
            f = yield from lib.open(t, "/shared", write=False)
            assert f.using_direct_path
            n, data = yield from f.pread(t, 0, 4096)
            outs.append(data)
            yield from f.close(t)

        spawned.append(mach.spawn(t, body()))
    mach.run()
    for sp in spawned:
        _ = sp.value
    assert outs == [b"W" * 4096] * 3


def test_reader_sees_other_process_overwrite(m):
    """Device is the point of coherence for data ops (Section 4.5)."""
    mach = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)

    pa = mach.spawn_process("a")
    la = mach.userlib(pa)
    ta = pa.new_thread()
    pb = mach.spawn_process("b")
    lb = mach.userlib(pb)
    tb = pb.new_thread()

    def body():
        fa = yield from la.open(ta, "/f", write=True, create=True)
        yield from fa.append(ta, 4096, b"1" * 4096)
        fb = yield from lb.open(tb, "/f", write=True)
        yield from fb.pwrite(tb, 0, 4096, b"2" * 4096)
        n, data = yield from fa.pread(ta, 0, 4096)
        return data

    assert mach.run_process(body()) == b"2" * 4096


def test_per_process_throughput_isolated_under_sharing(m):
    """Figure 10: per-process bandwidth with private files; everyone
    makes progress at similar rates."""
    from repro.apps.fio import FioJob, run_fio

    job = FioJob(engine="bypassd", rw="randwrite", block_size=4096,
                 file_size=8 << 20, threads=1, processes=4,
                 ops_per_thread=60)
    result = run_fio(m, job)
    assert len(result.per_process_gbps) == 4
    lo, hi = min(result.per_process_gbps), max(result.per_process_gbps)
    assert hi / lo < 1.5
