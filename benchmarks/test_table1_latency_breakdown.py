"""Table 1: latency breakdown of a 4 KB read() on the Optane SSD.

Paper: 160 / 2810 / 540 / 220 / 4020 / 100 ns, total 7850 ns, with the
device at ~51% and VFS+ext4 at ~36%.
"""

from repro.bench import table1_latency_breakdown


def test_table1(experiment):
    table = experiment(table1_latency_breakdown)
    rows = table.by("Layer")
    total = rows["Total (measured)"][1]
    assert abs(total - 7850) < 60

    device_share = rows["Device time"][2]
    assert 48 <= device_share <= 54          # paper: 51%
    vfs_share = rows["VFS + ext4"][2]
    assert 33 <= vfs_share <= 39             # paper: 36%
    # Software overhead is ~half of the access: the paper's motivation.
    software = total - rows["Device time"][1]
    assert 0.45 <= software / total <= 0.55
