"""Unit + property tests for the real on-disk B-tree KV store."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GiB, Machine
from repro.apps.kvstore import KVError, KVStore


def fresh_store(size=32 << 20):
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/kv", write=True, create=True)
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0, size)
        store = yield from KVStore.create(f, t)
        return f, store

    f, store = m.run_process(body())
    return m, t, f, store


def drive(m, gen):
    return m.run_process(gen)


class TestBasics:
    def test_put_get(self):
        m, t, f, store = fresh_store()

        def body():
            yield from store.put(b"alpha", b"1")
            yield from store.put(b"beta", b"2")
            a = yield from store.get(b"alpha")
            b = yield from store.get(b"beta")
            miss = yield from store.get(b"gamma")
            return a, b, miss

        assert drive(m, body()) == (b"1", b"2", None)

    def test_overwrite(self):
        m, t, f, store = fresh_store()

        def body():
            yield from store.put(b"k", b"old")
            yield from store.put(b"k", b"new")
            v = yield from store.get(b"k")
            return v, store.item_count

        assert drive(m, body()) == (b"new", 1)

    def test_validation(self):
        m, t, f, store = fresh_store()

        def bad_key():
            yield from store.put(b"", b"v")

        with pytest.raises(KVError):
            drive(m, bad_key())

        def big_value():
            yield from store.put(b"k", b"v" * 5000)

        with pytest.raises(KVError):
            drive(m, big_value())

    def test_splits_and_tree_check(self):
        m, t, f, store = fresh_store()

        def body():
            for i in range(800):
                yield from store.put(f"key-{i:05d}".encode(),
                                     f"val-{i}".encode() * 10)
            yield from store.check_tree()
            return store.page_count

        pages = drive(m, body())
        assert pages > 10  # definitely split

    def test_scan_ordered(self):
        m, t, f, store = fresh_store()

        def body():
            for i in range(300):
                yield from store.put(f"k{i:04d}".encode(), b"v")
            out = yield from store.scan(b"k0100", 20)
            return out

        out = drive(m, body())
        assert [k for k, _ in out] == \
            [f"k{i:04d}".encode() for i in range(100, 120)]

    def test_scan_past_end(self):
        m, t, f, store = fresh_store()

        def body():
            yield from store.put(b"a", b"1")
            out = yield from store.scan(b"z", 5)
            return out

        assert drive(m, body()) == []

    def test_persistence_across_reopen(self):
        m, t, f, store = fresh_store()

        def write():
            for i in range(100):
                yield from store.put(f"p{i}".encode(), str(i).encode())
            yield from store.flush()

        drive(m, write())

        def reopen():
            store2 = yield from KVStore.open(f, t)
            vals = []
            for i in range(100):
                v = yield from store2.get(f"p{i}".encode())
                vals.append(v)
            yield from store2.check_tree()
            return vals

        vals = drive(m, reopen())
        assert vals == [str(i).encode() for i in range(100)]

    def test_open_bad_magic(self):
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
        proc = m.spawn_process()
        lib = m.userlib(proc)
        t = proc.new_thread()

        def body():
            f = yield from lib.open(t, "/junk", write=True, create=True)
            yield from f.append(t, 4096, b"\xde\xad" * 2048)
            yield from KVStore.open(f, t)

        with pytest.raises(KVError):
            m.run_process(body())


class TestProperties:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(
        st.binary(min_size=1, max_size=24),
        st.binary(max_size=64)), min_size=1, max_size=120))
    def test_matches_dict(self, items):
        """Property: the store behaves exactly like a dict."""
        m, t, f, store = fresh_store()

        def body():
            model = {}
            for k, v in items:
                yield from store.put(k, v)
                model[k] = v
            yield from store.check_tree()
            for k, v in sorted(model.items()):
                got = yield from store.get(k)
                assert got == v
            assert store.item_count == len(model)

        drive(m, body())

    def test_random_order_insert_then_full_scan(self):
        m, t, f, store = fresh_store()
        rng = random.Random(42)
        keys = [f"{rng.randrange(10**9):09d}".encode()
                for _ in range(400)]

        def body():
            for k in keys:
                yield from store.put(k, k[::-1])
            out = yield from store.scan(b"0", 1000)
            return out

        out = drive(m, body())
        unique_sorted = sorted(set(keys))
        assert [k for k, _ in out] == unique_sorted
        assert all(v == k[::-1] for k, v in out)
