"""Static analysis for simulation correctness (simlint).

``python scripts/simlint.py src/repro`` is the CLI front end; this
package is the library: an AST pass with ~10 SIM rules that catch the
ways Python code breaks the engine's same-seed-same-bytes guarantee
(wall-clock reads, hash-order iteration into the event queue, float
delays on the integer nanosecond clock, event-protocol misuse).

See ``docs/static_analysis.md`` for the rule catalogue with bad/good
examples, and :mod:`repro.sim.sanitizer` for the runtime counterpart.
"""

from .rules import ERROR, RULES, Rule, WARNING, iter_rules_help, rule_by_id
from .linter import (
    LintResult,
    Violation,
    apply_baseline,
    iter_python_files,
    lint_paths,
    lint_source,
    load_baseline,
    render_human,
    render_json,
    write_baseline,
)
from .fixes import FIXABLE_RULES, fix_file, fix_source

__all__ = [
    "ERROR",
    "WARNING",
    "RULES",
    "Rule",
    "rule_by_id",
    "iter_rules_help",
    "iter_python_files",
    "LintResult",
    "Violation",
    "lint_source",
    "lint_paths",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "render_human",
    "render_json",
    "FIXABLE_RULES",
    "fix_source",
    "fix_file",
]
