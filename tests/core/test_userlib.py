"""Unit tests for UserLib: interception, routing, partial writes."""

import pytest

from repro import GiB, Machine
from repro.nvme.spec import Opcode


@pytest.fixture
def m():
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)


def setup_file(m, size=1 << 20, write=True, optimized=False):
    proc = m.spawn_process()
    lib = m.userlib(proc, optimized_appends=optimized)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/data", write=True, create=True)
        if size:
            yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0,
                                              size)
        return f

    f = m.run_process(body())
    return m, proc, lib, t, f


class TestRouting:
    def test_reads_go_direct(self, m):
        m, proc, lib, t, f = setup_file(m)
        syscalls_before = m.kernel.syscall_count

        def body():
            for i in range(5):
                yield from f.pread(t, i * 4096, 4096)

        m.run_process(body())
        assert lib.direct_reads == 5
        assert m.kernel.syscall_count == syscalls_before  # no kernel

    def test_overwrites_go_direct(self, m):
        m, proc, lib, t, f = setup_file(m)
        before = m.kernel.syscall_count

        def body():
            yield from f.pwrite(t, 0, 4096, b"q" * 4096)

        m.run_process(body())
        assert lib.direct_writes == 1
        assert m.kernel.syscall_count == before

    def test_appends_go_through_kernel(self, m):
        """Table 3: appends modify metadata, so UserLib forwards them."""
        m, proc, lib, t, f = setup_file(m, size=0)
        before = m.kernel.syscall_count

        def body():
            yield from f.append(t, 4096, b"a" * 4096)

        m.run_process(body())
        assert m.kernel.syscall_count > before
        assert f.size == 4096
        assert m.fs.lookup("/data").size == 4096

    def test_append_then_direct_read(self, m):
        m, proc, lib, t, f = setup_file(m, size=0)

        def body():
            yield from f.append(t, 512, b"x" * 512)
            n, data = yield from f.pread(t, 0, 512)
            return n, data

        n, data = m.run_process(body())
        assert data == b"x" * 512
        assert lib.direct_reads == 1

    def test_read_write_data_integrity(self, m):
        m, proc, lib, t, f = setup_file(m)
        blob = bytes(range(256)) * 64  # 16 KiB

        def body():
            yield from f.pwrite(t, 8192, len(blob), blob)
            n, data = yield from f.pread(t, 8192, len(blob))
            return data

        assert m.run_process(body()) == blob

    def test_unaligned_read(self, m):
        m, proc, lib, t, f = setup_file(m)

        def body():
            yield from f.pwrite(t, 0, 4096, bytes(range(16)) * 256)
            n, data = yield from f.pread(t, 100, 50)
            return n, data

        n, data = m.run_process(body())
        assert n == 50
        assert data == (bytes(range(16)) * 256)[100:150]

    def test_read_clamped_to_eof(self, m):
        m, proc, lib, t, f = setup_file(m, size=0)

        def body():
            yield from f.append(t, 1000, b"e" * 1000)
            n, data = yield from f.pread(t, 512, 4096)
            return n, data

        n, data = m.run_process(body())
        assert n == 488
        assert data == b"e" * 488

    def test_write_readonly_file_rejected(self, m):
        proc = m.spawn_process()
        lib = m.userlib(proc)
        t = proc.new_thread()

        def body():
            f0 = yield from lib.open(t, "/ro", write=True, create=True)
            yield from f0.append(t, 4096, bytes(4096))
            yield from f0.close(t)
            f = yield from lib.open(t, "/ro", write=False)
            yield from f.pwrite(t, 0, 512, bytes(512))

        with pytest.raises(PermissionError):
            m.run_process(body())


class TestPartialWrites:
    def test_sub_sector_rmw(self, m):
        m, proc, lib, t, f = setup_file(m)

        def body():
            yield from f.pwrite(t, 0, 4096, b"A" * 4096)
            yield from f.pwrite(t, 10, 4, b"BBBB")
            n, data = yield from f.pread(t, 0, 20)
            return data

        data = m.run_process(body())
        assert data == b"A" * 10 + b"BBBB" + b"A" * 6

    def test_concurrent_partial_writes_serialized(self, m):
        """Section 4.5.1: overlapping sub-sector writes do not clobber
        each other."""
        m, proc, lib, t, f = setup_file(m)
        t2 = proc.new_thread()

        def writer(thread, offset, byte):
            yield from f.pwrite(thread, offset, 8, bytes([byte]) * 8)

        def body():
            yield from f.pwrite(t, 0, 4096, b"\0" * 4096)
            p1 = m.spawn(t, writer(t, 0, 0x41))
            p2 = m.spawn(t2, writer(t2, 8, 0x42))
            yield m.sim.all_of([p1, p2])
            n, data = yield from f.pread(t, 0, 16)
            return data

        data = m.run_process(body())
        assert data == b"A" * 8 + b"B" * 8

    def test_disjoint_sectors_not_serialized(self, m):
        m, proc, lib, t, f = setup_file(m)
        t2 = proc.new_thread()
        finish = []

        def writer(thread, offset, tag):
            yield from f.pwrite(thread, offset, 8, b"w" * 8)
            finish.append((tag, m.now))

        def body():
            yield from f.pwrite(t, 0, 8192, b"\0" * 8192)
            p1 = m.spawn(t, writer(t, 0, "a"))
            p2 = m.spawn(t2, writer(t2, 4096, "b"))
            yield m.sim.all_of([p1, p2])

        m.run_process(body())
        # Concurrent: the later finisher did not wait a full RMW extra.
        times = dict(finish)
        assert abs(times["a"] - times["b"]) < 6000


class TestOptimizedAppends:
    def test_optimized_append_prealloc(self, m):
        """Section 5.1: fallocate once, then append as overwrites."""
        m, proc, lib, t, f = setup_file(m, size=0, optimized=True)

        def body():
            for i in range(8):
                yield from f.append(t, 4096, bytes([i]) * 4096)
            n, data = yield from f.pread(t, 7 * 4096, 4096)
            return data

        data = m.run_process(body())
        assert data == bytes([7]) * 4096
        # Only the first append hit the kernel (fallocate); the rest
        # were direct overwrites.
        assert lib.direct_writes >= 7

    def test_optimized_append_faster_than_kernel_append(self, m):
        def run_appends(optimized):
            mach = Machine(capacity_bytes=1 * GiB,
                           memory_bytes=256 << 20, capture_data=False)
            _, proc, lib, t, f = setup_file(mach, size=0,
                                            optimized=optimized)

            def body():
                t0 = mach.now
                for _ in range(64):
                    yield from f.append(t, 4096)
                return mach.now - t0

            return mach.run_process(body())

        assert run_appends(True) < run_appends(False)


class TestFsync:
    def test_fsync_flushes_and_commits(self, m):
        m, proc, lib, t, f = setup_file(m)

        def body():
            yield from f.pwrite(t, 0, 4096, b"d" * 4096)
            yield from f.fsync(t)
            return m.fs.journal.commits

        assert m.run_process(body()) >= 1
