"""Figure 13: WiredTiger YCSB throughput scaling with threads.

Paper: BypassD improves throughput ~18% on average over the sync
baseline and ~13% over XRP; the improvement is larger at small thread
counts (at high counts the WiredTiger cache lock hides faster I/O);
YCSB D (insert-heavy, latest distribution) sees little benefit; on
YCSB E XRP cannot help (scans are single I/Os) while BypassD still
accelerates every I/O.
"""

from repro.bench import fig13_wiredtiger_threads


def grid(table):
    out = {}
    for wl, engine, threads, kops, lat in table.rows:
        out[(wl, engine, threads)] = kops
    return out


def test_fig13(experiment):
    table = experiment(fig13_wiredtiger_threads)
    g = grid(table)
    workloads = sorted({k[0] for k in g})
    threads = sorted({k[2] for k in g})

    # Throughput scales with threads for every engine.
    for wl in workloads:
        for eng in ("sync", "bypassd"):
            assert g[(wl, eng, threads[-1])] > 1.5 * g[(wl, eng, 1)]

    # BypassD beats sync everywhere except (possibly) insert-heavy D.
    gains = []
    for wl in workloads:
        for t in threads:
            ratio = g[(wl, "bypassd", t)] / g[(wl, "sync", t)]
            if wl != "D":
                assert ratio > 1.0, f"bypassd<=sync on {wl} x{t}"
                gains.append(ratio)

    avg_gain = sum(gains) / len(gains)
    assert 1.08 < avg_gain < 1.9   # paper: ~1.18 average

    # The improvement is larger at 1 thread than at the max count.
    for wl in ("B", "C"):
        low = g[(wl, "bypassd", 1)] / g[(wl, "sync", 1)]
        high = g[(wl, "bypassd", threads[-1])] / \
            g[(wl, "sync", threads[-1])]
        assert low >= high * 0.95

    # D: little benefit (recent keys are cached; barely any I/O).
    d_gain = g[("D", "bypassd", 1)] / g[("D", "sync", 1)]
    c_gain = g[("C", "bypassd", 1)] / g[("C", "sync", 1)]
    assert d_gain < c_gain

    # E: XRP cannot accelerate scans, BypassD can.
    assert g[("E", "bypassd", 1)] > g[("E", "xrp", 1)]
    e_xrp_gain = g[("E", "xrp", 1)] / g[("E", "sync", 1)]
    assert e_xrp_gain < 1.1

    # BypassD vs XRP averaged across read workloads: paper ~13%.
    vs_xrp = [g[(wl, "bypassd", t)] / g[(wl, "xrp", t)]
              for wl in ("A", "B", "C", "F") for t in threads]
    assert sum(vs_xrp) / len(vs_xrp) > 1.03
