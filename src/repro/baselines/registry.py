"""Engine factory: one place the benchmarks build every bar from.

``make_engine(machine, proc, name)`` returns an object with ``name``
and ``open(thread, path, write, create)`` for each approach the paper
compares: sync, libaio, io_uring, spdk, xrp, bypassd (and
bypassd-optappend for the Section 5.1 enhancement).
"""

from __future__ import annotations

from typing import Generator, List

from ..core.userlib import UserLib
from ..kernel.process import Process
from ..machine import Machine
from ..sim.cpu import Thread
from .io_uring import IOUringEngine
from .libaio import LibaioEngine
from .spdk import SPDKEngine
from .sync_io import SyncEngine
from .xrp import XRPEngine

__all__ = ["ENGINE_NAMES", "make_engine", "chained_read",
           "BypassDEngine"]

ENGINE_NAMES = ("sync", "libaio", "io_uring", "spdk", "xrp", "bypassd",
                "bypassd-optappend")


class BypassDEngine:
    """Engine-protocol adapter over a per-process UserLib."""

    def __init__(self, lib: UserLib, name: str = "bypassd"):
        self.lib = lib
        self.name = name

    def open(self, thread: Thread, path: str, write: bool = False,
             create: bool = False) -> Generator:
        return self.lib.open(thread, path, write=write, create=create)


def make_engine(machine: Machine, proc: Process, name: str,
                buffered: bool = False):
    """Build the named engine for ``proc`` on ``machine``."""
    if name == "sync":
        return SyncEngine(machine.kernel, proc, direct=not buffered)
    if name == "libaio":
        return LibaioEngine(machine.sim, machine.kernel, proc)
    if name == "io_uring":
        return IOUringEngine(machine.sim, machine.cpus, machine.kernel,
                             proc)
    if name == "spdk":
        return SPDKEngine(machine.sim, machine.device, proc)
    if name == "xrp":
        return XRPEngine(machine.kernel, proc)
    if name == "bypassd":
        return BypassDEngine(machine.userlib(proc))
    if name == "bypassd-optappend":
        return BypassDEngine(machine.userlib(proc,
                                             optimized_appends=True),
                             name="bypassd-optappend")
    raise ValueError(f"unknown engine {name!r}; "
                     f"choose from {ENGINE_NAMES}")


def chained_read(file, thread: Thread, offsets: List[int],
                 nbytes: int) -> Generator:
    """Pointer-chase helper: uses XRP's in-kernel resubmission when the
    file supports it, sequential reads otherwise."""
    if hasattr(file, "chained_read"):
        return file.chained_read(thread, offsets, nbytes)
    return _sequential_chain(file, thread, offsets, nbytes)


def _sequential_chain(file, thread: Thread, offsets: List[int],
                      nbytes: int) -> Generator:
    result = (0, None)
    for offset in offsets:
        result = yield from file.pread(thread, offset, nbytes)
    return result
