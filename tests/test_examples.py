"""The examples must keep running: each is executed as a script.

latency_tour is excluded (it runs a minute of experiments); the
benchmark suite covers the same code paths.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "shared_device.py",
    "kvstore_app.py",
    "log_ingest.py",
    "lsm_engine.py",
    "fault_injection.py",
])
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example reports something


def test_quickstart_shows_the_headline(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "direct 4KB read" in out
    assert "kernel 4KB read" in out
