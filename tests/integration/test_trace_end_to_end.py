"""Tracing through full workloads: spans must reconcile with time."""

import pytest

from repro import GiB, Machine


def test_spans_never_exceed_wallclock():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                capture_data=False, trace=True)
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/tr", write=True, create=True)
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0,
                                          1 << 20)
        for i in range(16):
            yield from f.pread(t, i * 4096, 4096)
            yield from f.pwrite(t, i * 4096, 4096)

    t0 = m.now
    m.run_process(body())
    elapsed = m.now - t0
    # Single-threaded: no span category can exceed the elapsed time.
    for category, ns in m.tracer.by_category().items():
        assert ns <= elapsed, (category, ns, elapsed)


def test_mixed_engines_attribute_to_right_categories():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                capture_data=False, trace=True)
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def direct_io():
        f = yield from lib.open(t, "/a", write=True, create=True)
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0,
                                          1 << 20)
        m.tracer.clear()
        yield from f.pread(t, 0, 4096)

    m.run_process(direct_io())
    by = m.tracer.by_category()
    assert "device" in by and by["device"] > 4000
    assert by.get("syscall", 0) == 0
    assert 0 < by.get("user", 0) < 1000

    from repro.baselines.registry import make_engine
    proc2 = m.spawn_process()
    sync = make_engine(m, proc2, "sync")
    t2 = proc2.new_thread()

    def kernel_io():
        f = yield from sync.open(t2, "/a")
        m.tracer.clear()
        yield from f.pread(t2, 0, 4096)

    m.run_process(kernel_io())
    by = m.tracer.by_category()
    assert by.get("syscall", 0) > 7000
    assert by.get("user", 0) == 0
    # The device label distinguishes the two paths.
    labels = m.tracer.by_label("device")
    assert "kernel-io" in labels
