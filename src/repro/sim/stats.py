"""Measurement helpers: latency distributions, throughput, time series.

Every benchmark in the paper reports one of three things — a latency
distribution (avg / p99.9), a throughput (IOPS, GB/s, kops/s), or a
value over time (Figure 12).  These recorders collect samples in
simulated nanoseconds and convert to the units the paper prints.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "LatencyRecorder",
    "ThroughputCounter",
    "TimeSeries",
    "BreakdownRecorder",
    "Stats",
    "percentile",
]

NS_PER_US = 1_000.0
NS_PER_S = 1_000_000_000.0


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (matches fio's reporting convention)."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile out of range: {pct}")
    ordered = sorted(samples)
    if pct == 0.0:
        return ordered[0]
    rank = math.ceil(pct / 100.0 * len(ordered))
    return ordered[rank - 1]


class LatencyRecorder:
    """Collects per-operation latency samples (ns)."""

    def __init__(self, name: str = "latency"):
        self.name = name
        self.samples: List[int] = []

    def record(self, ns: int) -> None:
        if ns < 0:
            raise ValueError(f"negative latency: {ns}")
        self.samples.append(int(ns))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean_ns(self) -> float:
        if not self.samples:
            raise ValueError(f"{self.name}: no samples")
        return sum(self.samples) / len(self.samples)

    @property
    def mean_us(self) -> float:
        return self.mean_ns / NS_PER_US

    def percentile_ns(self, pct: float) -> float:
        return percentile(self.samples, pct)

    def percentile_us(self, pct: float) -> float:
        return self.percentile_ns(pct) / NS_PER_US

    @property
    def min_ns(self) -> int:
        return min(self.samples)

    @property
    def max_ns(self) -> int:
        return max(self.samples)

    def merge(self, other: "LatencyRecorder") -> None:
        self.samples.extend(other.samples)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean_us": self.mean_us,
            "p50_us": self.percentile_us(50),
            "p99_us": self.percentile_us(99),
            "p999_us": self.percentile_us(99.9),
        }


class ThroughputCounter:
    """Counts completed operations and bytes over a measured interval."""

    def __init__(self, name: str = "throughput"):
        self.name = name
        self.ops = 0
        self.bytes = 0
        self.start_ns: Optional[int] = None
        self.end_ns: Optional[int] = None

    def start(self, now_ns: int) -> None:
        self.start_ns = now_ns

    def stop(self, now_ns: int) -> None:
        self.end_ns = now_ns

    def record(self, nbytes: int = 0, ops: int = 1) -> None:
        self.ops += ops
        self.bytes += nbytes

    @property
    def elapsed_ns(self) -> int:
        if self.start_ns is None or self.end_ns is None:
            raise ValueError(f"{self.name}: interval not closed")
        return self.end_ns - self.start_ns

    @property
    def iops(self) -> float:
        elapsed = self.elapsed_ns
        if elapsed <= 0:
            return 0.0
        return self.ops * NS_PER_S / elapsed

    @property
    def kops(self) -> float:
        return self.iops / 1_000.0

    @property
    def gbps(self) -> float:
        """Bandwidth in gigabytes per second (GB = 1e9 bytes, as fio)."""
        elapsed = self.elapsed_ns
        if elapsed <= 0:
            return 0.0
        return self.bytes / elapsed  # bytes/ns == GB/s

    @property
    def mbps(self) -> float:
        return self.gbps * 1_000.0


@dataclass
class TimeSeries:
    """Time-ordered (time, value) samples (Figure 12, telemetry gauges).

    ``samples`` is kept sorted by timestamp: ``record`` is O(1) for the
    common monotonic case (a sampler only moves forward in simulated
    time) and falls back to an insertion sort for out-of-order times,
    so ``between`` can bisect instead of scanning.  Windowed SLO
    evaluation over a long run is then O(log n + k) per window rather
    than O(n) — see the reducers below.
    """

    name: str = "series"
    samples: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def points(self) -> List[Tuple[int, float]]:
        """Alias kept for pre-telemetry callers (read-only use)."""
        return self.samples

    def record(self, now_ns: int, value: float) -> None:
        sample = (int(now_ns), float(value))
        if not self.samples or sample[0] >= self.samples[-1][0]:
            self.samples.append(sample)
        else:
            insort(self.samples, sample, key=itemgetter(0))

    def __len__(self) -> int:
        return len(self.samples)

    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def between(self, t0_ns: int, t1_ns: int) -> List[float]:
        """Values of samples with ``t0_ns <= t < t1_ns``, by bisection."""
        lo = bisect_left(self.samples, int(t0_ns), key=itemgetter(0))
        hi = bisect_left(self.samples, int(t1_ns), key=itemgetter(0))
        return [v for _, v in self.samples[lo:hi]]

    @property
    def latest(self) -> Optional[Tuple[int, float]]:
        return self.samples[-1] if self.samples else None

    # -- windowed reducers (SLO evaluation) ----------------------------

    def window_mean(self, t0_ns: int, t1_ns: int) -> float:
        vals = self.between(t0_ns, t1_ns)
        if not vals:
            raise ValueError(f"{self.name}: empty window")
        return sum(vals) / len(vals)

    def window_max(self, t0_ns: int, t1_ns: int) -> float:
        vals = self.between(t0_ns, t1_ns)
        if not vals:
            raise ValueError(f"{self.name}: empty window")
        return max(vals)

    def window_percentile(self, t0_ns: int, t1_ns: int,
                          pct: float) -> float:
        return percentile(self.between(t0_ns, t1_ns), pct)

    def summary(self) -> Dict[str, float]:
        """Deterministic whole-series digest (telemetry dumps)."""
        vals = self.values()
        if not vals:
            return {"count": 0.0}
        return {
            "count": float(len(vals)),
            "min": min(vals),
            "max": max(vals),
            "mean": sum(vals) / len(vals),
            "last": vals[-1],
        }


class BreakdownRecorder:
    """Per-component time accounting (Table 1 / Figure 7 style)."""

    def __init__(self, components: Sequence[str]):
        self.components = list(components)
        self.totals: Dict[str, int] = {c: 0 for c in self.components}
        self.ops = 0

    def record(self, **component_ns: int) -> None:
        for name, ns in component_ns.items():
            if name not in self.totals:
                raise KeyError(f"unknown breakdown component: {name}")
            self.totals[name] += int(ns)
        self.ops += 1

    def mean_ns(self, component: str) -> float:
        if self.ops == 0:
            raise ValueError("no operations recorded")
        return self.totals[component] / self.ops

    def mean_us(self, component: str) -> float:
        return self.mean_ns(component) / NS_PER_US

    def total_mean_ns(self) -> float:
        if self.ops == 0:
            raise ValueError("no operations recorded")
        return sum(self.totals.values()) / self.ops

    def shares(self) -> Dict[str, float]:
        total = sum(self.totals.values())
        if total == 0:
            return {c: 0.0 for c in self.components}
        return {c: self.totals[c] / total for c in self.components}

    def rows(self) -> List[Tuple[str, float, float]]:
        """(component, mean ns, share) rows like Table 1."""
        shares = self.shares()
        return [(c, self.mean_ns(c), shares[c]) for c in self.components]


@dataclass
class Stats:
    """Machine-wide health and fault-handling counters.

    One snapshot of everything the robustness paths count: device-side
    command outcomes, kernel-driver recovery actions, UserLib's
    fault-and-fallback protocol, and the injector's own record of what
    it inflicted.  Built duck-typed from a machine so this module stays
    free of model imports.
    """

    commands_served: int = 0
    commands_failed: int = 0
    commands_aborted: int = 0
    dropped_completions: int = 0
    translation_faults: int = 0
    driver_timeouts: int = 0
    driver_aborts: int = 0
    driver_retries: int = 0
    driver_io_errors: int = 0
    userlib_faults_handled: int = 0
    userlib_kernel_fallbacks: int = 0
    userlib_io_retries: int = 0
    userlib_io_errors: int = 0
    userlib_io_timeouts: int = 0
    userlib_async_write_errors: int = 0
    crashes: int = 0
    slo_breaches: int = 0
    injected: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_machine(cls, machine) -> "Stats":
        dev = machine.device
        driver_layers = [machine.blockio, machine.volume]
        libs = getattr(machine, "_userlibs", [])
        return cls(
            commands_served=dev.commands_served,
            commands_failed=dev.commands_failed,
            commands_aborted=dev.commands_aborted,
            dropped_completions=dev.dropped_completions,
            translation_faults=dev.translation_faults,
            driver_timeouts=sum(x.timeouts for x in driver_layers),
            driver_aborts=sum(x.aborts for x in driver_layers),
            driver_retries=sum(x.retries for x in driver_layers),
            driver_io_errors=sum(x.io_errors for x in driver_layers),
            userlib_faults_handled=sum(x.faults_handled for x in libs),
            userlib_kernel_fallbacks=sum(x.kernel_fallbacks for x in libs),
            userlib_io_retries=sum(x.io_retries for x in libs),
            userlib_io_errors=sum(x.io_errors for x in libs),
            userlib_io_timeouts=sum(x.io_timeouts for x in libs),
            userlib_async_write_errors=sum(x.async_write_errors
                                           for x in libs),
            crashes=1 if getattr(machine, "crashed", False) else 0,
            slo_breaches=(machine.monitor.breach_count
                          if getattr(machine, "monitor", None) is not None
                          else 0),
            injected=machine.faults.summary(),
        )

    def summary(self) -> Dict[str, int]:
        """Flat counter dict, injector counts prefixed ``injected_``.

        Deterministic key order; two same-seed runs must compare equal
        key for key (the acceptance criterion for reproducible fault
        schedules).
        """
        out: Dict[str, int] = {
            "commands_served": self.commands_served,
            "commands_failed": self.commands_failed,
            "commands_aborted": self.commands_aborted,
            "dropped_completions": self.dropped_completions,
            "translation_faults": self.translation_faults,
            "driver_timeouts": self.driver_timeouts,
            "driver_aborts": self.driver_aborts,
            "driver_retries": self.driver_retries,
            "driver_io_errors": self.driver_io_errors,
            "userlib_faults_handled": self.userlib_faults_handled,
            "userlib_kernel_fallbacks": self.userlib_kernel_fallbacks,
            "userlib_io_retries": self.userlib_io_retries,
            "userlib_io_errors": self.userlib_io_errors,
            "userlib_io_timeouts": self.userlib_io_timeouts,
            "userlib_async_write_errors": self.userlib_async_write_errors,
            "crashes": self.crashes,
            "slo_breaches": self.slo_breaches,
        }
        for kind, n in sorted(self.injected.items()):
            out[f"injected_{kind}"] = n
        return out

    def to_metrics(self, registry, prefix: str = "machine.") -> None:
        """Mirror this snapshot into a metrics registry as counters.

        Values are *set*, not incremented, so refreshing from a newer
        snapshot is idempotent (see
        :meth:`repro.obs.metrics.MetricsRegistry.absorb_counters`).
        """
        registry.absorb_counters(self.summary(), prefix=prefix)

    def nonzero(self) -> Dict[str, int]:
        return {k: v for k, v in self.summary().items() if v}
