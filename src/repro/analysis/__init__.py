"""Static analysis for simulation correctness (simlint).

``python scripts/simlint.py src/repro`` is the CLI front end; this
package is the library, in two passes:

* a **per-module AST pass** (:mod:`repro.analysis.linter`) with the
  SIM001–SIM014 rules that catch the ways Python code breaks the
  engine's same-seed-same-bytes guarantee (wall-clock reads,
  hash-order iteration into the event queue, float delays on the
  integer nanosecond clock, event-protocol misuse);
* a **whole-program pass** (:mod:`repro.analysis.program`) that parses
  the package once, builds the import graph and a conservative call
  graph with interprocedurally propagated fact summaries, and checks
  the SIM015–SIM018 rules against the declarative architecture
  manifest in :mod:`repro.analysis.architecture`.

See ``docs/static_analysis.md`` for the rule catalogue with bad/good
examples, and :mod:`repro.sim.sanitizer` for the runtime counterpart.
"""

from .rules import ERROR, RULES, Rule, WARNING, iter_rules_help, rule_by_id
from .linter import (
    LintResult,
    Violation,
    apply_baseline,
    is_entropy_call,
    iter_python_files,
    lint_paths,
    lint_source,
    load_baseline,
    render_human,
    render_json,
    write_baseline,
)
from .fixes import FIXABLE_RULES, fix_file, fix_source
from .architecture import (
    FriendEdge,
    Layer,
    Manifest,
    default_manifest,
)
from .program import (
    Program,
    ProgramResult,
    analyze_program,
    build_program,
    export_dot,
    export_json,
    lint_program,
)

__all__ = [
    "ERROR",
    "WARNING",
    "RULES",
    "Rule",
    "rule_by_id",
    "iter_rules_help",
    "iter_python_files",
    "is_entropy_call",
    "LintResult",
    "Violation",
    "lint_source",
    "lint_paths",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "render_human",
    "render_json",
    "FIXABLE_RULES",
    "fix_source",
    "fix_file",
    "Layer",
    "FriendEdge",
    "Manifest",
    "default_manifest",
    "Program",
    "ProgramResult",
    "build_program",
    "analyze_program",
    "lint_program",
    "export_dot",
    "export_json",
]
