"""Common engine-file interface shared by every I/O path.

Workloads (fio, WiredTiger, BPF-KV, KVell) are engine-agnostic: they
call ``open`` on an engine and drive the returned file with
``pread``/``pwrite``/``append``/``fsync``/``close`` generators.  The
BypassD :class:`~repro.core.userlib.BypassDFile` satisfies the same
surface, so a single workload definition runs against every bar in the
paper's figures.
"""

from __future__ import annotations

from typing import Generator, Optional, Protocol, runtime_checkable

from ..sim.cpu import Thread

__all__ = ["EngineFile", "IOEngine"]


@runtime_checkable
class EngineFile(Protocol):
    """An open file on some I/O path."""

    @property
    def size(self) -> int: ...

    def pread(self, thread: Thread, offset: int,
              nbytes: int) -> Generator: ...

    def pwrite(self, thread: Thread, offset: int, nbytes: int,
               data: Optional[bytes] = None) -> Generator: ...

    def append(self, thread: Thread, nbytes: int,
               data: Optional[bytes] = None) -> Generator: ...

    def fsync(self, thread: Thread) -> Generator: ...

    def close(self, thread: Thread) -> Generator: ...


@runtime_checkable
class IOEngine(Protocol):
    """A way of reaching the SSD (kernel, async, userspace...)."""

    name: str

    def open(self, thread: Thread, path: str, write: bool = False,
             create: bool = False) -> Generator: ...
