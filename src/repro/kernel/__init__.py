"""Kernel substrate: processes, VFS/syscalls, block layer, page cache."""

from .process import (
    O_APPEND,
    O_CREAT,
    O_DIRECT,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    AddressSpace,
    FileDescription,
    Process,
)
from .blockio import BlockIOLayer, IOError_, KernelVolume
from .pagecache import PageCache
from .syscalls import Kernel, PermissionError_

__all__ = [
    "O_APPEND",
    "O_CREAT",
    "O_DIRECT",
    "O_RDONLY",
    "O_RDWR",
    "O_WRONLY",
    "AddressSpace",
    "FileDescription",
    "Process",
    "BlockIOLayer",
    "IOError_",
    "KernelVolume",
    "PageCache",
    "Kernel",
    "PermissionError_",
]
