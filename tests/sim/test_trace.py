"""Tests for span tracing, including the measured Figure 7 breakdown."""

import pytest

from repro import GiB, Machine
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACER, Span, Tracer


class TestTracerUnit:
    def test_span_validation(self):
        with pytest.raises(ValueError):
            Span("user", "x", 100, 50)

    def test_begin_end(self):
        sim = Simulator()
        tracer = Tracer(sim)
        token = tracer.begin("kernel", "vfs")
        sim.timeout(250)
        sim.run()
        tracer.end(token)
        assert tracer.total_ns("kernel") == 250
        assert tracer.by_label("kernel") == {"vfs": 250}

    def test_context_manager(self):
        sim = Simulator()
        tracer = Tracer(sim)
        with tracer.span("device", "io"):
            sim.timeout(77)
            sim.run()
        assert tracer.total_ns("device", "io") == 77

    def test_by_category_and_between(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("a", "x", 0, 10)
        tracer.record("a", "y", 10, 30)
        tracer.record("b", "z", 5, 6)
        assert tracer.by_category() == {"a": 30, "b": 1}
        assert len(tracer.between(0, 10)) == 2

    def test_clear(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.record("a", "x", 0, 1)
        tracer.clear()
        assert len(tracer) == 0

    def test_null_tracer_is_silent(self):
        NULL_TRACER.record("a", "b", 0, 1)
        token = NULL_TRACER.begin("a")
        NULL_TRACER.end(token)
        with NULL_TRACER.span("a"):
            pass
        assert not NULL_TRACER.enabled


class TestMeasuredBreakdown:
    """Figure 7 / Table 1 from spans instead of constants."""

    def _run_reads(self, engine_name, ops=16):
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                    capture_data=False, trace=True)
        proc = m.spawn_process()
        from repro.baselines.registry import make_engine
        engine = make_engine(m, proc, engine_name)
        t = proc.new_thread()

        def body():
            from repro.apps.workload_utils import materialize_file
            yield from materialize_file(m, proc, engine, "/f", 1 << 20)
            f = yield from engine.open(t, "/f")
            yield from f.pread(t, 0, 4096)  # warm
            m.tracer.clear()
            t0 = m.now
            for i in range(ops):
                yield from f.pread(t, i * 4096, 4096)
            return (m.now - t0) / ops

        total = m.run_process(body())
        return m.tracer, total, ops

    def test_sync_measured_device_share(self):
        tracer, total, ops = self._run_reads("sync")
        device = tracer.total_ns("device") / ops
        syscall = tracer.total_ns("syscall") / ops
        assert abs(syscall - total) < 5  # syscall span covers the op
        # Table 1: device is ~51% of a sync 4KB read.
        assert 0.47 < device / total < 0.55
        kernel = syscall - device
        assert abs(kernel - 3830) < 100

    def test_bypassd_measured_no_kernel(self):
        tracer, total, ops = self._run_reads("bypassd")
        assert tracer.total_ns("syscall") == 0   # no kernel crossings
        device = tracer.total_ns("device") / ops
        user = tracer.total_ns("user") / ops
        # Figure 7: almost everything is device; UserLib is tiny.
        assert device / total > 0.9
        assert 0 < user < 500
