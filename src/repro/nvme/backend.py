"""SSD media backend: lazily-materialised block store plus timing.

Blocks that were never written read back as zeros without being
stored, so paper-scale files (a 46 GB WiredTiger database, a 54 GB
KVell store) cost memory proportional to the bytes actually written,
not to the logical capacity.  Benchmarks that only need timing can
disable payload capture entirely.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hw.params import HardwareParams
from .spec import LBA_SIZE, Opcode

__all__ = ["MediaBackend"]

_ZERO_BLOCK = bytes(LBA_SIZE)


class MediaBackend:
    """Block storage with Optane-like service times."""

    def __init__(self, params: HardwareParams, capacity_bytes: int,
                 capture_data: bool = True):
        if capacity_bytes < LBA_SIZE:
            raise ValueError("capacity below one block")
        self.params = params
        self.capacity_blocks = capacity_bytes // LBA_SIZE
        self.capture_data = capture_data
        self._blocks: Dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- data ---------------------------------------------------------------

    def check_range(self, lba: int, nblocks: int) -> bool:
        return 0 <= lba and lba + nblocks <= self.capacity_blocks

    def read_blocks(self, lba: int, nblocks: int) -> Optional[bytes]:
        """Return payload bytes, or None when capture is disabled."""
        if not self.check_range(lba, nblocks):
            raise ValueError(f"read beyond capacity: lba={lba} n={nblocks}")
        self.reads += 1
        self.bytes_read += nblocks * LBA_SIZE
        if not self.capture_data:
            return None
        return b"".join(
            self._blocks.get(lba + i, _ZERO_BLOCK) for i in range(nblocks)
        )

    def peek_blocks(self, lba: int, nblocks: int) -> Optional[bytes]:
        """Read payload bytes without touching the access counters.

        For observers only — chaos oracles and debugging tools that
        must not perturb the run they are auditing (``read_blocks``
        bumps ``reads``/``bytes_read``, which a later stats check
        would see).  Returns None when capture is disabled.
        """
        if not self.check_range(lba, nblocks):
            raise ValueError(f"peek beyond capacity: lba={lba} n={nblocks}")
        if not self.capture_data:
            return None
        return b"".join(
            self._blocks.get(lba + i, _ZERO_BLOCK) for i in range(nblocks)
        )

    def write_blocks(self, lba: int, nblocks: int,
                     data: Optional[bytes]) -> None:
        if not self.check_range(lba, nblocks):
            raise ValueError(f"write beyond capacity: lba={lba} n={nblocks}")
        self.writes += 1
        self.bytes_written += nblocks * LBA_SIZE
        if not self.capture_data or data is None:
            return
        if len(data) != nblocks * LBA_SIZE:
            raise ValueError(
                f"payload is {len(data)} bytes for {nblocks} blocks"
            )
        for i in range(nblocks):
            chunk = data[i * LBA_SIZE:(i + 1) * LBA_SIZE]
            if chunk == _ZERO_BLOCK:
                # Writing zeros de-materialises the block.
                self._blocks.pop(lba + i, None)
            else:
                self._blocks[lba + i] = chunk

    def zero_blocks(self, lba: int, nblocks: int) -> None:
        """Discard/zero a range (block allocation zeroing, Section 4.1)."""
        if not self.check_range(lba, nblocks):
            raise ValueError(f"zero beyond capacity: lba={lba} n={nblocks}")
        if nblocks < len(self._blocks):
            for i in range(nblocks):
                self._blocks.pop(lba + i, None)
        else:
            # Huge range (fallocate of a paper-scale file): walk the
            # materialised blocks instead of the range.
            end = lba + nblocks
            doomed = [b for b in self._blocks if lba <= b < end]
            for b in doomed:
                del self._blocks[b]

    @property
    def materialized_blocks(self) -> int:
        return len(self._blocks)

    # -- timing ---------------------------------------------------------------

    def media_ns(self, opcode: Opcode) -> int:
        """Media access latency before/around the data transfer."""
        if opcode is Opcode.READ:
            return self.params.read_media_ns
        if opcode is Opcode.WRITE:
            return self.params.write_media_ns
        if opcode is Opcode.FLUSH:
            return self.params.flush_ns
        raise ValueError(f"unknown opcode {opcode}")

    def transfer_ns(self, nbytes: int) -> int:
        """Per-command transfer time at the media/controller rate."""
        return self.params.media_transfer_ns(nbytes)

    def link_ns(self, nbytes: int) -> int:
        """Time the shared device link is occupied moving ``nbytes``."""
        return int(round(nbytes / self.params.device_link_bytes_per_ns))
