"""Directory tree: path resolution and namespace edits.

Directory payloads are name -> inode-number maps held on the directory
inode.  Path handling is deliberately POSIX-flavoured (absolute paths,
``/`` separators, no ``.``/``..`` support needed by the workloads).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .inode import FileType, Inode

__all__ = [
    "DirectoryError",
    "NotADirectory",
    "FileExists",
    "FileNotFound",
    "split_path",
    "DirectoryTree",
]


class DirectoryError(Exception):
    pass


class NotADirectory(DirectoryError):
    pass


class FileExists(DirectoryError):
    pass


class FileNotFound(DirectoryError):
    pass


def split_path(path: str) -> List[str]:
    if not path.startswith("/"):
        raise DirectoryError(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    for part in parts:
        if part in (".", ".."):
            raise DirectoryError(f"'.'/'..' not supported: {path!r}")
    return parts


class DirectoryTree:
    """Namespace operations over an inode table."""

    def __init__(self, root: Inode, inodes: Dict[int, Inode]):
        if not root.is_dir:
            raise NotADirectory("root inode is not a directory")
        self.root = root
        self._inodes = inodes

    def resolve(self, path: str) -> Inode:
        node = self.root
        for part in split_path(path):
            if not node.is_dir:
                raise NotADirectory(f"{part!r} reached through non-directory")
            assert node.children is not None
            ino = node.children.get(part)
            if ino is None:
                raise FileNotFound(path)
            node = self._inodes[ino]
        return node

    def resolve_parent(self, path: str) -> Tuple[Inode, str]:
        parts = split_path(path)
        if not parts:
            raise DirectoryError("cannot operate on /")
        parent_path = "/" + "/".join(parts[:-1])
        return self.resolve(parent_path), parts[-1]

    def exists(self, path: str) -> bool:
        try:
            self.resolve(path)
            return True
        except DirectoryError:
            return False

    def link(self, parent: Inode, name: str, inode: Inode) -> None:
        if not parent.is_dir:
            raise NotADirectory(f"parent of {name!r}")
        assert parent.children is not None
        if name in parent.children:
            raise FileExists(name)
        parent.children[name] = inode.ino
        inode.attrs.nlink += 0 if inode.is_dir else 0  # first link counted at create

    def unlink(self, parent: Inode, name: str) -> Inode:
        assert parent.children is not None
        ino = parent.children.get(name)
        if ino is None:
            raise FileNotFound(name)
        inode = self._inodes[ino]
        if inode.is_dir and inode.children:
            raise DirectoryError(f"directory not empty: {name!r}")
        del parent.children[name]
        inode.attrs.nlink -= 1
        return inode

    def listdir(self, path: str) -> List[str]:
        node = self.resolve(path)
        if not node.is_dir:
            raise NotADirectory(path)
        assert node.children is not None
        return sorted(node.children)

    def walk(self) -> Iterable[Tuple[str, Inode]]:
        """Yield (path, inode) for every entry (fsck traversal)."""
        stack: List[Tuple[str, Inode]] = [("/", self.root)]
        while stack:
            path, node = stack.pop()
            yield path, node
            if node.is_dir:
                assert node.children is not None
                for name, ino in node.children.items():
                    child_path = path.rstrip("/") + "/" + name
                    stack.append((child_path, self._inodes[ino]))
