#!/usr/bin/env python3
"""perf_track — span-measured latency regression tracking.

Runs the pinned workload matrix (``repro.obs.perf.PERF_MATRIX``)
through the hierarchical tracer, aggregates per-layer latency
attribution, and writes or checks ``BENCH_perf.json`` at the repo
root.  The simulation is deterministic, so ``--check`` compares the
committed baseline *exactly* by default — any drift in the measured
timeline (a layer got slower, a retry appeared, attribution moved
between user/kernel/device) fails CI.

Usage:
    python scripts/perf_track.py --write            # refresh baseline
    python scripts/perf_track.py --check            # compare (CI)
    python scripts/perf_track.py --check --tolerance 0.01
    python scripts/perf_track.py --write --only sync-4k-randread
    python scripts/perf_track.py --write --quick --json /tmp/q.json

Exit status: 0 on success / no drift, 1 on drift or bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.perf import (  # noqa: E402
    PERF_MATRIX,
    QUICK_MATRIX,
    collect_perf,
    compare_perf,
)

DEFAULT_JSON = REPO_ROOT / "BENCH_perf.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_track.py",
        description="Write or check the span-measured perf baseline.")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="run the matrix and (re)write the baseline")
    mode.add_argument("--check", action="store_true",
                      help="run the matrix and compare to the baseline")
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON,
                        metavar="PATH",
                        help=f"baseline path (default {DEFAULT_JSON})")
    parser.add_argument("--only", action="append", metavar="NAME",
                        help="restrict to named configs (repeatable)")
    parser.add_argument("--quick", action="store_true",
                        help="use the tiny smoke-test matrix")
    parser.add_argument("--tolerance", type=float, default=0.0,
                        metavar="REL",
                        help="relative tolerance for --check "
                             "(default 0.0: exact)")
    args = parser.parse_args(argv)

    matrix = QUICK_MATRIX if args.quick else PERF_MATRIX
    payload = collect_perf(matrix, names=args.only)
    for name, wl in payload["workloads"].items():
        print(f"{name}: mean {wl['mean_ns']:.0f} ns  "
              f"p99 {wl['p99_ns']} ns  "
              f"user/kernel/device "
              f"{wl['user_ns']:.0f}/{wl['kernel_ns']:.0f}/"
              f"{wl['device_ns']:.0f} ns")

    if args.write:
        args.json.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"wrote {args.json}")
        return 0

    if not args.json.exists():
        print(f"error: baseline {args.json} not found "
              "(run with --write first)", file=sys.stderr)
        return 1
    expected = json.loads(args.json.read_text(encoding="utf-8"))
    if args.only:
        expected = {**expected,
                    "workloads": {k: v
                                  for k, v in expected["workloads"].items()
                                  if k in set(args.only)}}
    problems = compare_perf(expected, payload,
                            tolerance=args.tolerance)
    if problems:
        print(f"perf drift vs {args.json}:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        print("If intentional, refresh with: "
              "python scripts/perf_track.py --write", file=sys.stderr)
        return 1
    print(f"no drift vs {args.json} "
          f"({len(payload['workloads'])} workloads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
