"""File tables: the pre-populated, shared FTE subtrees (Section 4.1).

A file table is a sequence of page-table *leaf* nodes whose entries are
File Table Entries — LBA-in-place-of-PFN, FT bit set, DevID recorded
(Figure 3).  The kernel builds them bottom-up from the file's extent
tree, caches them in the VFS inode, and attaches them to a process's
page table at PMD granularity with plain pointer updates, which makes
the *warm* fmap nearly constant-time per 2 MB of file.

Entries live at the exact leaf slot of their logical file page, so
sparse files (holes punched by out-of-order writes) work: a hole is an
absent entry, which the IOMMU turns into a translation fault and
UserLib into a kernel-path retry.  Filling a hole or growing the tail
updates the shared leaves in place — visible to every attached process
at once; only brand-new leaves need (re-)attachment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..hw.pagetable import (
    ENTRIES_PER_NODE,
    LEVEL_PT,
    PMD_SPAN,
    PageTableNode,
    fte_encode,
    pte_present,
)
from ..hw.params import HardwareParams

__all__ = ["FileTable", "build_file_table", "PAGES_PER_LEAF"]

PAGES_PER_LEAF = ENTRIES_PER_NODE  # 512 pages -> one leaf spans 2 MiB
PAGE = 4096

Mapping = Tuple[int, int, int]  # (logical page, device page, count)


@dataclass
class FileTable:
    """The cached file-table subtree for one inode."""

    devid: int
    leaves: List[PageTableNode] = field(default_factory=list)
    pages: int = 0          # one past the highest mapped page
    build_cost_ns: int = 0

    @property
    def span_bytes(self) -> int:
        return len(self.leaves) * PMD_SPAN

    def memory_bytes(self) -> int:
        """FTE memory overhead: one 4 KB page per leaf (Section 6.3)."""
        return sum(1 for leaf in self.leaves
                   if leaf is not None) * PAGE

    # -- construction / growth -----------------------------------------------

    def set_range(self, logical: int, device_page: int, count: int,
                  params: HardwareParams) -> Tuple[List[int], int]:
        """Install FTEs for ``count`` pages starting at ``logical``.

        Returns (indices of leaves newly created, cost_ns).  Existing
        leaves are updated in place (shared-table visibility).
        """
        if count <= 0:
            raise ValueError("empty range")
        new_leaves: List[int] = []
        last_leaf = (logical + count - 1) // PAGES_PER_LEAF
        while len(self.leaves) <= last_leaf:
            self.leaves.append(None)
        for i in range(count):
            page = logical + i
            leaf_idx, slot = divmod(page, PAGES_PER_LEAF)
            if self.leaves[leaf_idx] is None:
                self.leaves[leaf_idx] = PageTableNode(LEVEL_PT)
                new_leaves.append(leaf_idx)
            # Shared entries carry maximum rights; the per-process R/W
            # bit lives at the private attach point (Figure 4).
            self.leaves[leaf_idx].entries[slot] = fte_encode(
                device_page + i, self.devid, writable=True)
        self.pages = max(self.pages, logical + count)
        cost = count * params.fte_write_ns
        self.build_cost_ns += cost
        return new_leaves, cost

    def populate(self, mappings: List[Mapping],
                 params: HardwareParams) -> int:
        """Cold build from the extent tree's (logical, phys, count)."""
        for logical, device_page, count in mappings:
            self.set_range(logical, device_page, count, params)
        return self.pages

    # -- shrink ------------------------------------------------------------

    def truncate_pages(self, keep_pages: int) -> List[int]:
        """Clear entries at/after ``keep_pages``.

        Returns indices of leaves dropped entirely (callers detach
        those from every attached address space).
        """
        if keep_pages < 0:
            raise ValueError("negative page count")
        if keep_pages >= self.pages:
            return []
        first_dead_leaf = -(-keep_pages // PAGES_PER_LEAF)
        for page in range(keep_pages,
                          min(self.pages,
                              first_dead_leaf * PAGES_PER_LEAF)):
            leaf_idx, slot = divmod(page, PAGES_PER_LEAF)
            if self.leaves[leaf_idx] is not None:
                self.leaves[leaf_idx].entries[slot] = 0
        dead = [idx for idx in range(first_dead_leaf, len(self.leaves))
                if self.leaves[idx] is not None]
        del self.leaves[first_dead_leaf:]
        self.pages = keep_pages
        return dead

    # -- introspection -----------------------------------------------------

    def entry_count(self) -> int:
        return sum(leaf.present_count() for leaf in self.leaves
                   if leaf is not None)

    def has_entry(self, page: int) -> bool:
        leaf_idx, slot = divmod(page, PAGES_PER_LEAF)
        if leaf_idx >= len(self.leaves) or self.leaves[leaf_idx] is None:
            return False
        return pte_present(self.leaves[leaf_idx].entries[slot])

    def check_dense(self) -> None:
        """For hole-free files: entries dense in [0, pages)."""
        seen = 0
        for leaf in self.leaves:
            for slot in range(ENTRIES_PER_NODE):
                present = (leaf is not None
                           and pte_present(leaf.entries[slot]))
                expected = seen < self.pages
                if present != expected:
                    raise AssertionError(
                        f"file table density broken at page {seen}"
                    )
                seen += 1
        if seen < self.pages:
            raise AssertionError("file table shorter than page count")


def build_file_table(mappings: List[Mapping], devid: int,
                     params: HardwareParams) -> FileTable:
    """Cold build: create and populate a file table from mappings."""
    table = FileTable(devid=devid)
    table.populate(mappings, params)
    return table
