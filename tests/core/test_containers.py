"""Containers (paper Section 5.2): mount namespaces + BypassD.

"BypassD supports sharing an SSD securely between multiple containers
without requiring additional modifications" — the kernel's namespace
confines each container's opens, and everything below (fmap, FTEs,
IOMMU checks) is container-agnostic.
"""

import pytest

from repro import GiB, Machine
from repro.fs.ext4.directory import FileNotFound


@pytest.fixture
def m():
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)


def test_containers_get_isolated_namespaces(m):
    pa = m.spawn_container_process("alpha")
    pb = m.spawn_container_process("beta")
    assert pa.chroot == "/containers/alpha"
    assert pb.chroot == "/containers/beta"
    assert m.fs.exists("/containers/alpha")
    assert m.fs.exists("/containers/beta")


def test_containers_share_device_with_direct_access(m):
    outs = {}
    spawned = []
    for cname in ("alpha", "beta"):
        proc = m.spawn_container_process(cname)
        lib = m.userlib(proc)
        t = proc.new_thread()

        def body(lib=lib, t=t, cname=cname):
            f = yield from lib.open(t, "/data.bin", write=True,
                                    create=True)
            assert f.using_direct_path
            yield from f.append(t, 4096, cname.encode() * (4096 //
                                                           len(cname)))
            n, data = yield from f.pread(t, 0, 4096)
            outs[cname] = data
            yield from f.close(t)

        spawned.append(m.spawn(t, body()))
    m.run()
    for sp in spawned:
        _ = sp.value
    # Same path, different namespaces, different files, both direct.
    assert outs["alpha"].startswith(b"alpha")
    assert outs["beta"].startswith(b"beta")
    assert m.fs.exists("/containers/alpha/data.bin")
    assert m.fs.exists("/containers/beta/data.bin")


def test_container_cannot_reach_other_container(m):
    pa = m.spawn_container_process("alpha")
    lib_a = m.userlib(pa)
    ta = pa.new_thread()

    def alpha_creates():
        f = yield from lib_a.open(ta, "/secret", write=True, create=True)
        yield from f.append(ta, 512, b"s" * 512)
        yield from f.close(ta)

    m.run_process(alpha_creates())

    pb = m.spawn_container_process("beta")
    lib_b = m.userlib(pb)
    tb = pb.new_thread()

    def beta_tries():
        # The path resolves inside beta's namespace: nothing there.
        yield from lib_b.open(tb, "/secret")

    with pytest.raises(FileNotFound):
        m.run_process(beta_tries())

    def beta_tries_escape():
        # Even naming the other container's subtree resolves *under*
        # beta's root, not at the real filesystem root.
        yield from lib_b.open(tb, "/containers/alpha/secret")

    with pytest.raises(FileNotFound):
        m.run_process(beta_tries_escape())


def test_container_files_still_protected_by_iommu(m):
    from repro.nvme.spec import AddressKind, Command, Opcode, Status

    pa = m.spawn_container_process("alpha", uid=1001)
    lib_a = m.userlib(pa)
    ta = pa.new_thread()

    def alpha_creates():
        f = yield from lib_a.open(ta, "/v", write=True, create=True)
        yield from f.append(ta, 4096, b"v" * 4096)
        return f.state.vba

    vba = m.run_process(alpha_creates())

    pb = m.spawn_container_process("beta", uid=1002)
    qp = m.device.create_queue_pair(pasid=pb.pasid)

    def beta_raw_attack():
        c = yield m.device.submit(qp, Command(
            Opcode.READ, addr=vba, nbytes=4096,
            addr_kind=AddressKind.VBA))
        return c.status

    assert m.run_process(beta_raw_attack()) is Status.TRANSLATION_FAULT
