"""End-to-end acceptance for the chaos pipeline.

The planted retry-off-by-one canary must be *found* by a seeded batch,
*shrunk* to a deterministic minimal reproducer, and *absent* when the
canary is disarmed — the chaos engine catching a bug we know is there.

The nightly CI job runs the full 200-scenario batch through the CLI;
here a 50-scenario slice of the same seed chain keeps tier-1 fast
while still covering several independent hits.
"""

from repro.chaos import generate, run_scenario, scenario_seed, shrink

BATCH_SEED = 1234
BATCH = 50
CANARY = ("retry-off-by-one",)


def batch():
    return [generate(scenario_seed(BATCH_SEED, i)) for i in range(BATCH)]


def test_seeded_batch_finds_the_canary_and_only_the_canary():
    hits = []
    for i, s in enumerate(batch()):
        result = run_scenario(s, canaries=CANARY)
        kinds = {v.oracle for v in result.violations}
        assert kinds <= {"retry-bounds"}, (i, sorted(kinds))
        if kinds:
            hits.append(i)
    assert len(hits) >= 3, f"canary barely detected: hits={hits}"


def test_same_batch_without_canary_is_silent():
    for i, s in enumerate(batch()):
        result = run_scenario(s)
        assert result.ok, (i, [v.to_dict() for v in result.violations])


def test_first_hit_shrinks_to_a_stable_reproducer():
    first = next(s for s in batch()
                 if not run_scenario(s, canaries=CANARY).ok)
    r1 = shrink(first, canaries=CANARY)
    r2 = shrink(first, canaries=CANARY)
    # same seed, same scenario, byte-identical shrink
    assert r1.scenario.to_json() == r2.scenario.to_json()
    replay = run_scenario(r1.scenario, canaries=CANARY)
    assert {v.oracle for v in replay.violations} == {"retry-bounds"}
    assert run_scenario(r1.scenario).ok
