"""Machine-level API tests."""

import pytest

from repro import DEFAULT_PARAMS, GiB, Machine


def test_defaults_wire_everything():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    assert m.kernel.bypassd is m.bypassd
    assert m.fs.extent_listener is not None
    assert m.device.iommu is m.iommu
    assert m.cpus.cores == DEFAULT_PARAMS.cpu_cores
    assert not m.tracer.enabled


def test_trace_flag():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                trace=True)
    assert m.tracer.enabled
    assert m.kernel.tracer is m.tracer
    assert m.blockio.tracer is m.tracer


def test_custom_params_propagate():
    params = DEFAULT_PARAMS.replace(cpu_cores=4, pcie_round_trip_ns=145)
    m = Machine(params=params, capacity_bytes=1 * GiB,
                memory_bytes=256 << 20)
    assert m.cpus.cores == 4
    assert m.device.params.pcie_round_trip_ns == 145


def test_spawn_process_binds_pasid():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    proc = m.spawn_process()
    assert m.iommu.table_for(proc.pasid) is proc.aspace.page_table


def test_run_until():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    m.sim.timeout(10_000)
    assert m.run(until=5_000) == 5_000
    assert m.now == 5_000


def test_now_tracks_sim():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)

    def body():
        yield m.sim.timeout(123)
        return m.now

    assert m.run_process(body()) == 123


def test_cache_ftes_flag():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                cache_ftes=True)
    assert m.iommu.cache_ftes


def test_container_helper_idempotent():
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
    a = m.spawn_container_process("x")
    b = m.spawn_container_process("x")
    assert a.chroot == b.chroot
    assert a.pid != b.pid


def test_version_exported():
    import repro
    assert repro.__version__


def test_sanitize_flag_attaches_sanitizer_without_changing_timeline():
    def once(sanitize):
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                    sanitize=sanitize)
        proc = m.spawn_process()
        lib = m.userlib(proc)
        t = proc.new_thread()

        def body():
            f = yield from lib.open(t, "/s", write=True, create=True)
            yield from f.append(t, 4096, b"s" * 4096)
            yield from f.fsync(t)

        m.run_process(body())
        return m.now

    plain = once(False)
    sanitized = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                        sanitize=True)
    assert sanitized.sim.sanitizer is not None
    assert once(True) == plain
