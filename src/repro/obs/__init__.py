"""repro.obs — cross-cutting observability.

Three pieces (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  log-linear histograms (p50/p99/p999 within one bucket's relative
  error) that absorbs the ad-hoc ``Stats``/counter dicts.
* :mod:`repro.obs.export` — exporters over the hierarchical spans of
  :class:`repro.sim.trace.Tracer`: Chrome ``trace_event`` JSON
  (loadable in Perfetto), collapsed-stack flamegraphs, span-tree
  fingerprints and a pretty-printer.
* :mod:`repro.obs.perf` — the pinned workload matrix behind
  ``scripts/perf_track.py`` and the span-measured Table 1 / Figure 7
  breakdown.  (Import it as ``repro.obs.perf``; it is not imported
  here to keep ``repro.machine`` ↔ ``repro.obs`` import-cycle free.)
* :mod:`repro.obs.monitor` — the continuous-telemetry sampler:
  deterministic time-series gauges across every layer plus declarative
  SLO monitors with edge-triggered breach events.
* :mod:`repro.obs.diff` — run-to-run regression attribution: aligned
  span-tree diffing of two trace/metrics dumps, per-layer deltas and
  retry attribution (``scripts/trace_diff.py``).
* :mod:`repro.obs.attribution` — per-op latency waterfalls: the exact
  wait/service decomposition of every operation's span tree.
* :mod:`repro.obs.exemplar` — tail exemplars: full span trees and
  waterfalls retained only for ops above a percentile threshold.
* :mod:`repro.obs.hostprof` — the deterministic host profiler mapping
  interpreter self-time onto the architecture layer DAG.
* :mod:`repro.obs.timings` — the ``bench-timings.json`` schema: per
  experiment wall-clock and simulated-time records written by the
  parallel runner and consumed by the CI sharder.
"""

from .attribution import (
    Segment,
    Waterfall,
    build_waterfall,
    render_waterfalls,
    waterfalls,
    waterfalls_json,
)
from .exemplar import (
    Exemplar,
    ExemplarConfig,
    capture_exemplars,
    exemplars_json,
    render_exemplars,
    top_exemplars,
)
from .export import (
    ancestor_chain,
    chrome_trace_json,
    collapsed_stacks,
    flow_events,
    format_tree,
    metrics_json,
    span_index,
    tree_fingerprint,
    write_chrome_trace,
    write_flamegraph,
)
from .hostprof import HostProfile, HostProfiler, profile_call
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .monitor import (
    SLO,
    Breach,
    Monitor,
    MonitorConfig,
    sparkline,
)
from .timings import (
    JobTiming,
    load_timings,
    timing_weights,
    write_timings,
)

__all__ = [
    "JobTiming",
    "load_timings",
    "timing_weights",
    "write_timings",
    "Segment",
    "Waterfall",
    "build_waterfall",
    "render_waterfalls",
    "waterfalls",
    "waterfalls_json",
    "Exemplar",
    "ExemplarConfig",
    "capture_exemplars",
    "exemplars_json",
    "render_exemplars",
    "top_exemplars",
    "HostProfile",
    "HostProfiler",
    "profile_call",
    "flow_events",
    "Breach",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Monitor",
    "MonitorConfig",
    "SLO",
    "sparkline",
    "ancestor_chain",
    "chrome_trace_json",
    "collapsed_stacks",
    "format_tree",
    "metrics_json",
    "span_index",
    "tree_fingerprint",
    "write_chrome_trace",
    "write_flamegraph",
]
