"""The simulation must be perfectly reproducible: identical inputs give
identical simulated timelines, down to the nanosecond."""

from repro import GiB, Machine
from repro.apps.fio import FioJob, run_fio
from repro.apps.wiredtiger import BTreeGeometry, run_wiredtiger_ycsb


def test_fio_run_is_deterministic():
    def once():
        m = Machine(capacity_bytes=2 * GiB, memory_bytes=256 << 20,
                    capture_data=False)
        job = FioJob(engine="bypassd", rw="randread", block_size=4096,
                     file_size=16 << 20, threads=4, ops_per_thread=50,
                     seed=1234)
        r = run_fio(m, job)
        return (r.latency.samples, r.iops, m.now)

    assert once() == once()


def test_wiredtiger_run_is_deterministic():
    geom = BTreeGeometry(100_000)

    def once():
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                    capture_data=False)
        r = run_wiredtiger_ycsb(m, "xrp", "A", threads=2,
                                ops_per_thread=60, geometry=geom,
                                seed=77)
        return (r.kops, r.mean_lat_us, r.ios, m.now)

    assert once() == once()


def test_full_stack_timeline_is_deterministic():
    def once():
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
        proc = m.spawn_process()
        lib = m.userlib(proc, nonblocking_writes=True)
        t = proc.new_thread()
        stamps = []

        def body():
            f = yield from lib.open(t, "/d", write=True, create=True)
            yield from f.append(t, 8192, b"d" * 8192)
            stamps.append(m.now)
            for i in range(10):
                yield from f.pwrite(t, (i % 2) * 4096, 4096)
                stamps.append(m.now)
            yield from f.fsync(t)
            stamps.append(m.now)

        m.run_process(body())
        return stamps

    assert once() == once()
