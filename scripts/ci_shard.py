#!/usr/bin/env python3
"""Partition CI work into balanced shards by committed timings.

    python scripts/ci_shard.py --shards 2 --index 0
    python scripts/ci_shard.py --shards 2 --index 1 --format json
    python scripts/ci_shard.py --shards 2 --index 0 --kind cells

Two kinds of work item:

- ``--kind files`` (default): the ``benchmarks/`` suite — prints the
  shard's test files for a CI matrix job to hand straight to pytest.
  Balancing weights come from the committed ``bench-timings.json``
  (written by ``python -m repro.bench ... --timings``): each benchmark
  file is matched to its experiment by name
  (``benchmarks/test_fig10_device_sharing.py`` → ``fig10``), files
  without a timing record get the median weight so new experiments
  are still distributed sensibly.
- ``--kind cells``: the sweep grid — prints the shard's grid cell ids
  for ``python -m repro.sweep run --cell ... --cell ...``.  Weights
  come from the committed ``sweep-timings.json`` (entries named
  ``sweep/<cell>``); cells the timings file has never seen fall back
  to the median cell weight, so shards stay balanced as the grid
  grows.

The partition is a deterministic longest-processing-time greedy: items
sorted by (weight desc, name), each assigned to the currently lightest
shard (ties to the lowest index).  Every item lands in exactly one
shard, so N shard jobs cover the whole work list.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.timings import load_timings, timing_weights  # noqa: E402

DEFAULT_TIMINGS = REPO_ROOT / "bench-timings.json"
DEFAULT_SWEEP_TIMINGS = REPO_ROOT / "sweep-timings.json"
DEFAULT_SWEEP_MANIFEST = REPO_ROOT / "sweep-manifest.json"
_NAME_RE = re.compile(r"^test_([a-z0-9]+)")


def experiment_for(path: Path) -> str:
    """``benchmarks/test_fig10_device_sharing.py`` → ``fig10``."""
    m = _NAME_RE.match(path.stem)
    return m.group(1) if m else path.stem


def file_weights(files: List[Path],
                 weights: Dict[str, float]) -> Dict[Path, float]:
    known = sorted(w for w in weights.values() if w > 0)
    median = known[len(known) // 2] if known else 1.0
    return {f: weights.get(experiment_for(f), median) or median
            for f in files}


def cell_weights(cells: List[str],
                 weights: Dict[str, float]) -> Dict[str, float]:
    """Per-cell weights from ``sweep/<cell>`` timing entries; cells
    without a committed record (new grid rows) get the median cell
    weight so a growing grid still shards evenly."""
    by_cell = {name[len("sweep/"):]: w for name, w in weights.items()
               if name.startswith("sweep/")}
    known = sorted(w for w in by_cell.values() if w > 0)
    median = known[len(known) // 2] if known else 1.0
    return {c: by_cell.get(c, median) or median for c in cells}


def partition(files, weights, shards: int):
    """Deterministic LPT greedy; returns ``shards`` item lists.

    Items are benchmark file paths or sweep cell-id strings — anything
    orderable whose name ``str()`` gives a stable tie-break.
    """
    bins = [[] for _ in range(shards)]
    loads = [0.0] * shards
    for f in sorted(files,
                    key=lambda f: (-weights[f], getattr(f, "name",
                                                        str(f)))):
        idx = min(range(shards), key=lambda i: (loads[i], i))
        bins[idx].append(f)
        loads[idx] += weights[f]
    return [sorted(b) for b in bins]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="ci_shard", description=__doc__)
    ap.add_argument("--shards", type=int, required=True)
    ap.add_argument("--index", type=int, required=True)
    ap.add_argument("--timings", type=Path, default=DEFAULT_TIMINGS)
    ap.add_argument("--benchmarks-dir", type=Path,
                    default=REPO_ROOT / "benchmarks")
    ap.add_argument("--kind", choices=("files", "cells"),
                    default="files",
                    help="what to shard: benchmark files (pytest) or "
                         "sweep grid cells (repro.sweep run --cell)")
    ap.add_argument("--sweep-manifest", type=Path,
                    default=DEFAULT_SWEEP_MANIFEST)
    ap.add_argument("--sweep-timings", type=Path,
                    default=DEFAULT_SWEEP_TIMINGS)
    ap.add_argument("--grid", default="default",
                    help="sweep grid to shard (--kind cells)")
    ap.add_argument("--format", choices=("args", "json"), default="args")
    args = ap.parse_args(argv)

    if args.shards < 1 or not (0 <= args.index < args.shards):
        print(f"bad shard spec: index {args.index} of {args.shards}",
              file=sys.stderr)
        return 2

    if args.kind == "cells":
        from repro.sweep.grid import load_manifest
        manifest = load_manifest(
            args.sweep_manifest if args.sweep_manifest.exists()
            else None)
        cells = manifest.cells(args.grid)
        weights: Dict[str, float] = {}
        if args.sweep_timings.exists():
            weights = timing_weights(load_timings(args.sweep_timings))
        per_cell = cell_weights(cells, weights)
        shard_cells = partition(cells, per_cell,
                                args.shards)[args.index]
        if args.format == "json":
            print(json.dumps({
                "shard": args.index,
                "shards": args.shards,
                "cells": shard_cells,
                "weight_s": round(sum(per_cell[c]
                                      for c in shard_cells), 2),
            }, indent=2, sort_keys=True))
        else:
            print(" ".join(shard_cells))
        return 0

    files = sorted(args.benchmarks_dir.glob("test_*.py"))
    if not files:
        print(f"no benchmark files under {args.benchmarks_dir}",
              file=sys.stderr)
        return 2
    weights = {}
    if args.timings.exists():
        weights = timing_weights(load_timings(args.timings))
    per_file = file_weights(files, weights)
    shard = partition(files, per_file, args.shards)[args.index]
    rel = [str(f.relative_to(REPO_ROOT)) if f.is_relative_to(REPO_ROOT)
           else str(f) for f in shard]
    if args.format == "json":
        print(json.dumps({
            "shard": args.index,
            "shards": args.shards,
            "files": rel,
            "weight_s": round(sum(per_file[f] for f in shard), 2),
        }, indent=2, sort_keys=True))
    else:
        print(" ".join(rel))
    return 0


if __name__ == "__main__":
    sys.exit(main())
