"""Tolerance bands, statuses, attribution escalation, rendering."""

import json

from repro.sweep import compare as cmp_mod
from repro.sweep.grid import MANIFEST_SCHEMA, SweepManifest
from repro.sweep.jobs import build_job, run_sweep_point


def record(cell="engine=bypassd/wl=rr/faults=none", **metrics):
    base = {"ops": 24.0, "mean_ns": 5000.0, "p50_ns": 4800.0,
            "p99_ns": 9000.0, "p999_ns": 9500.0, "iops": 100000.0,
            "mbps": 400.0, "retries": 0.0, "faults_injected": 0.0,
            "slo_breaches": 0.0}
    base.update(metrics)
    engine, wl, faults = (part.split("=", 1)[1]
                          for part in cell.split("/"))
    return {"schema": 1, "cell": cell,
            "axes": {"engine": engine, "workload": wl, "faults": faults},
            "faults_spec": None, "metrics": base, "tenants": [],
            "counters": {}, "slo": [], "trace": []}


def doc(cells, grid="default"):
    return {"schema": 1, "grid": grid, "cells": cells}


class TestJudging:
    def test_within_band_is_ok(self):
        rep = cmp_mod.compare_cell(record(), record(p99_ns=9400.0),
                                   cmp_mod.resolve_tolerances(None))
        assert rep["status"] == "ok"
        assert not rep["regressions"] and not rep["improvements"]

    def test_latency_rise_beyond_band_regresses(self):
        rep = cmp_mod.compare_cell(record(), record(p99_ns=20000.0),
                                   cmp_mod.resolve_tolerances(None))
        assert rep["status"] == "regressed"
        assert any(r["metric"] == "p99_ns" for r in rep["regressions"])

    def test_latency_fall_is_improvement_not_failure(self):
        rep = cmp_mod.compare_cell(record(p99_ns=20000.0), record(),
                                   cmp_mod.resolve_tolerances(None))
        assert rep["status"] == "improved"

    def test_throughput_fall_regresses(self):
        rep = cmp_mod.compare_cell(record(), record(iops=50000.0),
                                   cmp_mod.resolve_tolerances(None))
        assert rep["status"] == "regressed"
        assert any(r["metric"] == "iops" for r in rep["regressions"])

    def test_exact_counter_drift_regresses_either_direction(self):
        bands = cmp_mod.resolve_tolerances(None)
        up = cmp_mod.compare_cell(record(), record(retries=1.0), bands)
        down = cmp_mod.compare_cell(record(retries=1.0), record(), bands)
        assert up["status"] == "regressed"
        assert down["status"] == "regressed"

    def test_abs_floor_absorbs_tiny_latency_jitter(self):
        # +1900 ns on a 5000 ns mean is 38% relative but under the
        # 2000 ns absolute floor.
        rep = cmp_mod.compare_cell(record(), record(mean_ns=6900.0),
                                   cmp_mod.resolve_tolerances(None))
        assert rep["status"] == "ok"

    def test_manifest_override_replaces_band(self):
        bands = cmp_mod.resolve_tolerances(
            {"p99_ns": {"rel": 5.0, "abs": 0.0, "direction": "high"}})
        rep = cmp_mod.compare_cell(record(), record(p99_ns=20000.0),
                                   bands)
        assert rep["status"] == "ok"

    def test_tenant_metrics_use_suffix_band(self):
        base = record()
        base["tenants"] = [{"ops": 12.0, "mean_ns": 5000.0,
                            "p50_ns": 4800.0, "p99_ns": 9000.0,
                            "p999_ns": 9500.0}]
        cur = record()
        cur["tenants"] = [{"ops": 12.0, "mean_ns": 5000.0,
                           "p50_ns": 4800.0, "p99_ns": 30000.0,
                           "p999_ns": 9500.0}]
        rep = cmp_mod.compare_cell(base, cur,
                                   cmp_mod.resolve_tolerances(None))
        assert rep["status"] == "regressed"
        assert any(r["metric"] == "tenant0.p99_ns"
                   for r in rep["regressions"])


class TestReport:
    def test_missing_cell_is_fatal(self):
        rep = cmp_mod.compare_results(
            doc({"a": record("engine=x/wl=y/faults=z")}), doc({}))
        assert rep["cells"]["a"]["status"] == "missing"
        assert rep["summary"]["missing"] == 1
        assert not rep["ok"]

    def test_new_cell_is_informational(self):
        rep = cmp_mod.compare_results(
            doc({}), doc({"a": record("engine=x/wl=y/faults=z")}))
        assert rep["cells"]["a"]["status"] == "new"
        assert rep["ok"]

    def test_summary_counts_every_status(self):
        base = doc({"ok": record(), "reg": record(), "gone": record()})
        cur = doc({"ok": record(), "reg": record(p99_ns=20000.0),
                   "extra": record()})
        rep = cmp_mod.compare_results(base, cur)
        s = rep["summary"]
        assert (s["ok"], s["regressed"], s["missing"], s["new"]) == \
            (1, 1, 1, 1)
        assert s["total"] == 4
        assert not rep["ok"]


class TestAttribution:
    TINY = {
        "schema": MANIFEST_SCHEMA,
        "workloads": {
            "rr": {"kind": "fio", "rw": "randread", "block_size": 4096,
                   "tenants": 1, "ops": 24, "file_mib": 2, "seed": 42},
        },
        "faults": {"none": None},
        "grids": {"default": {"engines": ["bypassd"],
                              "workloads": ["rr"],
                              "faults": ["none"]}},
        "tolerances": {},
    }

    def test_injected_retry_blamed_on_retry_layer(self):
        """The acceptance pin: a seeded media-error retry in one cell
        must regress the gate with >= 90% of the latency delta
        attributed to the retry machinery."""
        manifest = SweepManifest.from_dict(self.TINY)
        point = manifest.point_for("engine=bypassd/wl=rr/faults=none",
                                   grid="default")
        clean = run_sweep_point(build_job(point, "t"))
        hurt = run_sweep_point(build_job(
            point, "t",
            effective_faults="seed=7,media_read_error_nth=12"))
        rep = cmp_mod.compare_cell(clean["record"], hurt["record"],
                                   cmp_mod.resolve_tolerances(None))
        assert rep["status"] == "regressed"
        attribution = rep["attribution"]
        assert attribution is not None, "trace attribution missing"
        blame = attribution["blame"]
        assert blame["layer"] == "retry"
        assert blame["wait_kind"] == "retry_backoff"
        assert blame["share_of_delta"] >= 0.90
        assert "retry" in rep["blame"]

    def test_attribution_absent_without_traces(self):
        rep = cmp_mod.compare_cell(record(), record(p99_ns=20000.0),
                                   cmp_mod.resolve_tolerances(None))
        assert rep["status"] == "regressed"
        assert rep["attribution"] is None
        assert rep["blame"] is None


class TestDocuments:
    def test_baseline_strips_run_identity_keeps_traces(self):
        results = doc({"a": record("engine=x/wl=y/faults=z")})
        base = cmp_mod.baseline_from_results(results)
        assert base["schema"] == cmp_mod.BASELINE_SCHEMA
        assert base["grid"] == "default"
        assert "trace" in base["cells"]["a"]
        assert "tree" not in base and "fingerprint" not in base

    def test_write_json_is_canonical_and_roundtrips(self, tmp_path):
        trace_doc = {"b": [1, 2], "a": {"z": 1, "y": 2},
                     "rows": [["x", 1, [2, 3]], ["y", 4, [5, 6]]]}
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        cmp_mod.write_json(p1, trace_doc)
        cmp_mod.write_json(p2, json.loads(p1.read_text()))
        assert p1.read_bytes() == p2.read_bytes()
        assert json.loads(p1.read_text()) == trace_doc
        # Leaf lists stay one compact element per line: a trace row
        # never indent-explodes into one-line-per-scalar.
        assert '["x",1,[2,3]]' in p1.read_text()


class TestRendering:
    def report(self):
        base = doc({
            "engine=bypassd/wl=rr/faults=none": record(
                "engine=bypassd/wl=rr/faults=none"),
            "engine=sync/wl=rr/faults=none": record(
                "engine=sync/wl=rr/faults=none"),
        })
        cur = doc({
            "engine=bypassd/wl=rr/faults=none": record(
                "engine=bypassd/wl=rr/faults=none", p999_ns=50000.0),
            "engine=sync/wl=rr/faults=none": record(
                "engine=sync/wl=rr/faults=none"),
        })
        return cmp_mod.compare_results(base, cur)

    def test_markdown_heat_table(self):
        md = cmp_mod.render_markdown(self.report())
        assert "### Sweep grid `default`" in md
        assert "| workload / faults | bypassd | sync |" in md
        assert "**REGRESSED (p999_ns" in md
        assert "#### Regressed cells — per-layer blame" in md
        assert "no trace attribution available" in md

    def test_markdown_absent_cell_renders_dash(self):
        rep = cmp_mod.compare_results(
            doc({"engine=a/wl=w/faults=none": record(
                "engine=a/wl=w/faults=none"),
                "engine=b/wl=w/faults=spike": record(
                    "engine=b/wl=w/faults=spike")}),
            doc({"engine=a/wl=w/faults=none": record(
                "engine=a/wl=w/faults=none"),
                "engine=b/wl=w/faults=spike": record(
                    "engine=b/wl=w/faults=spike")}))
        md = cmp_mod.render_markdown(rep)
        # (w, none) x engine b and (w, spike) x engine a don't exist.
        assert "—" in md

    def test_text_verdict_lines(self):
        text = cmp_mod.render_text(self.report())
        assert "sweep-gate: engine=bypassd/wl=rr/faults=none: " \
               "REGRESSED: p999_ns" in text
        assert "1 regressed" in text
