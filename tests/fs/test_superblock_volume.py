"""Unit tests for filesystem geometry and the kernel volume."""

import pytest

from repro import GiB, Machine
from repro.fs.ext4.superblock import FS_BLOCK_SIZE, Superblock


class TestSuperblock:
    def test_layout_ordering(self):
        sb = Superblock(total_blocks=1 << 20)
        assert sb.journal_start < sb.inode_table_start
        assert sb.inode_table_start < sb.first_data_block
        assert sb.first_data_block < sb.total_blocks

    def test_data_block_accounting(self):
        sb = Superblock(total_blocks=1 << 20)
        assert sb.data_blocks == sb.total_blocks - sb.first_data_block
        assert sb.capacity_bytes() == sb.data_blocks * FS_BLOCK_SIZE

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Superblock(total_blocks=100)

    def test_inode_table_sizing(self):
        sb = Superblock(total_blocks=1 << 20, inode_count=16_000)
        assert sb.inode_table_blocks == 1000  # 16 inodes per block

    def test_mount_flags(self):
        sb = Superblock(total_blocks=1 << 20)
        assert not sb.mounted
        assert sb.mount_count == 0


class TestKernelVolume:
    def test_metadata_io_counts(self):
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
        proc = m.spawn_process()
        t = proc.new_thread()
        from repro.kernel.process import O_CREAT, O_RDWR

        def body():
            fd = yield from m.kernel.sys_open(proc, t, "/f",
                                              O_RDWR | O_CREAT)
            yield from m.kernel.sys_fallocate(proc, t, fd, 0, 1 << 20)
            yield from m.kernel.sys_fsync(proc, t, fd)

        m.run_process(body())
        # The journal commit wrote metadata blocks through the volume.
        assert m.volume.meta_writes >= 1

    def test_cold_fmap_reads_metadata(self):
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
        proc = m.spawn_process()
        t = proc.new_thread()
        from repro.kernel.process import O_CREAT, O_DIRECT, O_RDWR

        def create():
            fd = yield from m.kernel.sys_open(proc, t, "/f",
                                              O_RDWR | O_CREAT)
            yield from m.kernel.sys_fallocate(proc, t, fd, 0, 1 << 20)
            yield from m.kernel.sys_close(proc, t, fd)

        m.run_process(create())
        # Evict the extent-status cache: the next fmap must read the
        # block-mapping metadata from the device (the cold-cold case).
        inode = m.fs.lookup("/f")
        m.fs.es_cache.evict(inode.ino)
        inode.file_table = None
        before = m.volume.meta_reads

        proc2 = m.spawn_process()
        t2 = proc2.new_thread()

        def remap():
            fd = yield from m.kernel.sys_open(proc2, t2, "/f",
                                              O_RDWR | O_DIRECT,
                                              bypass_intent=True)
            vba = yield from m.kernel.sys_fmap(proc2, t2, fd)
            return vba

        assert m.run_process(remap()) != 0
        assert m.volume.meta_reads > before

    def test_volume_zero_blocks_zeroes_media(self):
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
        block = m.fs.sb.first_data_block
        m.device.backend.write_blocks(block * 8, 8, b"x" * 4096)

        def body():
            yield from m.volume.zero_blocks(block, 1)

        m.run_process(body())
        assert m.device.backend.read_blocks(block * 8, 8) == bytes(4096)
