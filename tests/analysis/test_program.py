"""The whole-program pass: graphs, inference, SIM015-SIM018.

Toy packages are written into tmp_path and analysed with purpose-built
manifests; the real ``src/repro`` tree is analysed with the default
manifest at the end (mirroring what CI enforces).
"""

import json
import textwrap
from pathlib import Path

from repro.analysis import (
    FriendEdge,
    Layer,
    Manifest,
    build_program,
    default_manifest,
    export_dot,
    export_json,
    lint_program,
    lint_source,
)
from repro.analysis.linter import ORACLE_MUTATORS

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def write_pkg(root: Path, files: dict) -> Path:
    pkg = root / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for rel, src in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.parent != pkg and \
                not (path.parent / "__init__.py").exists():
            (path.parent / "__init__.py").write_text("")
        path.write_text(textwrap.dedent(src))
    return pkg


def empty_manifest(**kw) -> Manifest:
    defaults = dict(package="pkg", layers={}, assignments={})
    defaults.update(kw)
    return Manifest(**defaults)


# ---------------------------------------------------------------------------
# SIM016: transitive entropy (the planted acceptance fixture)
# ---------------------------------------------------------------------------

MODEL_SRC = """
    from .sched import stamp

    def submit(sim, req):
        t = stamp()
        return (t, req)
"""


def entropy_pkg(tmp_path):
    return write_pkg(tmp_path, {
        "clockutil.py": """
            import time

            def now_ns():
                return int(time.time() * 1e9)
        """,
        "sched.py": """
            from .clockutil import now_ns

            def stamp():
                return now_ns()
        """,
        "model.py": MODEL_SRC,
    })


def test_single_module_pass_cannot_see_the_chain():
    # the helper is two calls away: per-module SIM001 sees nothing
    assert lint_source(textwrap.dedent(MODEL_SRC)) == []


def test_sim016_flags_model_code_with_full_chain(tmp_path):
    pkg = entropy_pkg(tmp_path)
    vs = lint_program(pkg, manifest=empty_manifest(),
                      repo_root=tmp_path)
    flagged = [v for v in vs if v.rule.id == "SIM016"
               and v.path == "pkg/model.py"]
    assert len(flagged) == 1
    msg = flagged[0].message
    # the full chain, ending at the sink with its file:line
    assert "model.submit" in msg
    assert "sched.stamp" in msg
    assert "clockutil.now_ns" in msg
    assert "time.time()" in msg
    assert "pkg/clockutil.py:" in msg


def test_sim016_skips_the_direct_sink_itself(tmp_path):
    # clockutil.now_ns has the call in its own body: SIM001's turf
    pkg = entropy_pkg(tmp_path)
    vs = lint_program(pkg, manifest=empty_manifest(),
                      repo_root=tmp_path)
    assert not [v for v in vs if v.rule.id == "SIM016"
                and v.path == "pkg/clockutil.py"]


def test_sanctioned_sink_does_not_taint_callers(tmp_path):
    pkg = write_pkg(tmp_path, {
        "clockutil.py": """
            import time

            def now_ns():
                # host-side progress meter, declared boundary
                return int(time.time() * 1e9)  # simlint: ignore[SIM001]
        """,
        "model.py": """
            from .clockutil import now_ns

            def submit(sim):
                return now_ns()
        """,
    })
    vs = lint_program(pkg, manifest=empty_manifest(),
                      repo_root=tmp_path)
    assert not [v for v in vs if v.rule.id == "SIM016"]


def test_sim016_through_method_calls(tmp_path):
    pkg = write_pkg(tmp_path, {
        "clock.py": """
            import time

            class Clock:
                def read(self):
                    return time.monotonic()
        """,
        "model.py": """
            from .clock import Clock

            class Device:
                def __init__(self):
                    self.clock = Clock()

                def latency(self):
                    return self.clock.read()
        """,
    })
    vs = lint_program(pkg, manifest=empty_manifest(),
                      repo_root=tmp_path)
    flagged = [v for v in vs if v.rule.id == "SIM016"]
    assert any(v.path == "pkg/model.py" for v in flagged)


# ---------------------------------------------------------------------------
# SIM017: impure oracle calls (inference, not name lists)
# ---------------------------------------------------------------------------

def oracle_pkg(tmp_path):
    return write_pkg(tmp_path, {
        "store.py": """
            class Store:
                def __init__(self):
                    self.items = {}

                def insert_item(self, key, value):
                    self.items[key] = value
        """,
        "helpers.py": """
            def refresh_cache(store, key, value):
                store.insert_item(key, value)
                return value
        """,
        "oracles.py": """
            from .helpers import refresh_cache

            def check_thing(store):
                refresh_cache(store, "probe", 1)
                return []
        """,
    })


def test_sim017_fires_via_inference(tmp_path):
    pkg = oracle_pkg(tmp_path)
    manifest = empty_manifest(oracle_modules=("pkg.oracles",))
    vs = lint_program(pkg, manifest=manifest, repo_root=tmp_path)
    flagged = [v for v in vs if v.rule.id == "SIM017"]
    assert len(flagged) == 1
    assert flagged[0].path == "pkg/oracles.py"
    msg = flagged[0].message
    assert "refresh_cache" in msg
    # the inference chain reaches the underlying mutation
    assert "insert_item" in msg


def test_sim017_helper_is_not_in_any_hardcoded_list():
    # acceptance criterion: the flagged helper's name appears in no
    # hardcoded mutator list — SIM017 is inference, not name matching
    assert "refresh_cache" not in ORACLE_MUTATORS
    assert "insert_item" not in ORACLE_MUTATORS


def test_sim017_pure_reads_are_fine(tmp_path):
    pkg = write_pkg(tmp_path, {
        "helpers.py": """
            def count_items(store):
                total = 0
                for key in sorted(store.items):
                    total += 1
                return total
        """,
        "oracles.py": """
            from .helpers import count_items

            def check_thing(store):
                out = []
                if count_items(store) < 0:
                    out.append("impossible")
                return out
        """,
    })
    manifest = empty_manifest(oracle_modules=("pkg.oracles",))
    vs = lint_program(pkg, manifest=manifest, repo_root=tmp_path)
    assert not [v for v in vs if v.rule.id == "SIM017"]


def test_sim017_scratch_state_is_fine(tmp_path):
    # mutating an object the oracle itself constructed is not a
    # mutation of the run under audit
    pkg = write_pkg(tmp_path, {
        "store.py": """
            class Tally:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
        """,
        "oracles.py": """
            from .store import Tally

            def check_thing(machine):
                tally = Tally()
                tally.bump()
                return []
        """,
    })
    manifest = empty_manifest(oracle_modules=("pkg.oracles",))
    vs = lint_program(pkg, manifest=manifest, repo_root=tmp_path)
    assert not [v for v in vs if v.rule.id == "SIM017"]


# ---------------------------------------------------------------------------
# SIM015: the architecture DAG
# ---------------------------------------------------------------------------

def layered_manifest(friends=()):
    return Manifest(
        package="pkg",
        layers={"low": Layer("low", ()),
                "high": Layer("high", ("low",))},
        assignments={"pkg.low": "low", "pkg.high": "high"},
        friends=tuple(friends))


def test_sim015_flags_upward_import(tmp_path):
    pkg = write_pkg(tmp_path, {
        "low/core.py": """
            from ..high.api import helper

            def f():
                return helper()
        """,
        "high/api.py": """
            def helper():
                return 1
        """,
    })
    vs = lint_program(pkg, manifest=layered_manifest(),
                      repo_root=tmp_path)
    flagged = [v for v in vs if v.rule.id == "SIM015"]
    assert len(flagged) == 1
    assert flagged[0].path == "pkg/low/core.py"
    assert "layer 'low'" in flagged[0].message
    assert "layer 'high'" in flagged[0].message


def test_sim015_downward_import_is_fine(tmp_path):
    pkg = write_pkg(tmp_path, {
        "low/core.py": """
            def f():
                return 1
        """,
        "high/api.py": """
            from ..low.core import f

            def helper():
                return f()
        """,
    })
    vs = lint_program(pkg, manifest=layered_manifest(),
                      repo_root=tmp_path)
    assert not [v for v in vs if v.rule.id == "SIM015"]


def test_sim015_friend_edge_exempts(tmp_path):
    pkg = write_pkg(tmp_path, {
        "low/core.py": """
            from ..high.api import helper

            def f():
                return helper()
        """,
        "high/api.py": """
            def helper():
                return 1
        """,
    })
    friend = FriendEdge("pkg.low.core", "pkg.high.api",
                        "test exemption")
    vs = lint_program(pkg, manifest=layered_manifest([friend]),
                      repo_root=tmp_path)
    assert not [v for v in vs if v.rule.id == "SIM015"]


def test_sim015_detects_import_cycles(tmp_path):
    pkg = write_pkg(tmp_path, {
        "alpha.py": """
            from . import beta

            def a():
                return beta.b()
        """,
        "beta.py": """
            def b():
                from .alpha import a
                return a
        """,
    })
    vs = lint_program(pkg, manifest=empty_manifest(),
                      repo_root=tmp_path)
    cycles = [v for v in vs if v.rule.id == "SIM015"
              and "cycle" in v.message]
    assert len(cycles) == 1
    assert "pkg.alpha" in cycles[0].message
    assert "pkg.beta" in cycles[0].message


# ---------------------------------------------------------------------------
# SIM018: hot-path allocation
# ---------------------------------------------------------------------------

def test_sim018_flags_unslotted_allocation_on_hot_path(tmp_path):
    pkg = write_pkg(tmp_path, {
        "engine.py": """
            class Evt:
                def __init__(self):
                    self.x = 1

            class SlottedEvt:
                __slots__ = ("x",)

                def __init__(self):
                    self.x = 1

            class Engine:
                def run(self):
                    first = Evt()
                    second = SlottedEvt()
                    self.helper()
                    return (first, second)

                def helper(self):
                    return Evt()
        """,
        "setup.py": """
            from .engine import Evt

            def build():
                # not reachable from the dispatch entry: fine
                return Evt()
        """,
    })
    manifest = empty_manifest(hot_entries=("pkg.engine:Engine.run",))
    vs = lint_program(pkg, manifest=manifest, repo_root=tmp_path)
    flagged = [v for v in vs if v.rule.id == "SIM018"]
    assert len(flagged) == 2                    # run + helper, not setup
    assert all(v.path == "pkg/engine.py" for v in flagged)
    assert all("Evt" in v.message for v in flagged)
    assert not any("SlottedEvt (" in v.message for v in flagged)
    helper_hit = [v for v in flagged if "helper" in v.message]
    assert helper_hit and "Engine.run" in helper_hit[0].message


def test_sim018_dataclass_slots_and_exceptions_exempt(tmp_path):
    pkg = write_pkg(tmp_path, {
        "engine.py": """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Sample:
                x: int

            class EngineError(Exception):
                pass

            class Engine:
                def run(self):
                    if Sample(1).x > 2:
                        raise EngineError("impossible")
        """,
    })
    manifest = empty_manifest(hot_entries=("pkg.engine:Engine.run",))
    vs = lint_program(pkg, manifest=manifest, repo_root=tmp_path)
    assert not [v for v in vs if v.rule.id == "SIM018"]


# ---------------------------------------------------------------------------
# Graph building details
# ---------------------------------------------------------------------------

def test_import_edges_skip_implicit_ancestors(tmp_path):
    pkg = write_pkg(tmp_path, {
        "sub/leaf.py": """
            def f():
                return 1
        """,
        "user.py": """
            from . import sub
            from .sub import leaf

            def g():
                return leaf.f()
        """,
    })
    program = build_program(pkg, repo_root=tmp_path)
    imports = set(program.modules["pkg.user"].imports)
    # ``from . import sub`` / ``from .sub import leaf`` depend on the
    # named submodules, not on the bare package facade
    assert "pkg.sub" in imports
    assert "pkg.sub.leaf" in imports
    assert "pkg" not in imports


def test_reexport_chain_is_followed(tmp_path):
    pkg = write_pkg(tmp_path, {
        "impl.py": """
            import time

            def now():
                return time.time()
        """,
        "api/__init__.py": """
            from ..impl import now
        """,
        "model.py": """
            from .api import now

            def run(sim):
                return now()
        """,
    })
    vs = lint_program(pkg, manifest=empty_manifest(),
                      repo_root=tmp_path)
    flagged = [v for v in vs if v.rule.id == "SIM016"
               and v.path == "pkg/model.py"]
    assert flagged and "impl.now" in flagged[0].message


def test_unparseable_module_does_not_crash_the_pass(tmp_path):
    pkg = write_pkg(tmp_path, {
        "broken.py": "def f(:\n    pass\n",
        "fine.py": """
            def g():
                return 1
        """,
    })
    program = build_program(pkg, repo_root=tmp_path)
    assert "pkg.broken" in program.parse_failures
    assert lint_program(pkg, manifest=empty_manifest(),
                        repo_root=tmp_path) == []


# ---------------------------------------------------------------------------
# The real tree (what CI enforces)
# ---------------------------------------------------------------------------

def test_real_repo_program_pass_is_clean():
    vs = lint_program(REPO_ROOT / "src" / "repro",
                      repo_root=REPO_ROOT)
    assert vs == [], "\n".join(
        f"{v.rule.id} {v.path}:{v.line} {v.message}" for v in vs)


def test_real_repo_graph_shape():
    program = build_program(REPO_ROOT / "src" / "repro",
                            repo_root=REPO_ROOT)
    manifest = default_manifest()
    assert "repro.sim.engine" in program.modules
    assert len(program.modules) > 50
    assert len(program.functions) > 500
    assert manifest.layer_of("repro.sim.engine") == "sim"
    assert manifest.layer_of("repro.nvme.device") == "nvme"
    assert not manifest.import_allowed("repro.nvme.device",
                                       "repro.apps.fio")
    assert manifest.import_allowed("repro.kernel.blockio",
                                   "repro.sim.engine")


def test_real_repo_graph_exports():
    program = build_program(REPO_ROOT / "src" / "repro",
                            repo_root=REPO_ROOT)
    dot = export_dot(program)
    assert dot.startswith("digraph")
    assert '"kernel" -> "sim"' in dot
    assert "friend" in dot                       # dashed friend edges
    data = json.loads(export_json(program))
    assert data["package"] == "repro"
    assert data["modules"]["repro.sim.engine"]["layer"] == "sim"
    assert data["friends"], "friend edges should be on public record"
    assert any("Simulator.run" in e for e in data["hot_entries"])
