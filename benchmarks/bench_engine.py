#!/usr/bin/env python3
"""Engine microbenchmark: hot-path ops/sec, new engine vs reference.

    python benchmarks/bench_engine.py [--ops N] [--json engine-bench.json]

Times three pure simulator loops on both the overhauled
:mod:`repro.sim.engine` and the frozen pre-overhaul copy in
:mod:`repro.sim.engine_reference` (imported directly — no environment
switch needed), plus one full-stack loop (fio ops through a whole
``Machine``) on each engine via a ``REPRO_ENGINE`` subprocess:

- ``pure-timeout``   — one process yielding a constant timeout N times:
  the no-observer fast path plus the current-bucket queue, nothing else;
- ``timer-wheel``    — N timers with delays straddling every queue
  boundary (instant / bucket / ring / far-heap), posted in batches and
  drained: the calendar-queue placement and migration paths;
- ``event-churn``    — N bare events succeeded and drained in batches:
  the freelist recycle rate;
- ``full-stack``     — fio 4k random reads on the bypassd engine through
  the whole machine model, reported as simulated IOs per wall second.

Not a pytest suite on purpose: CI runs it as a standalone step and
uploads the JSON artifact, which ``scripts/ci_summary.py
--engine-bench`` renders into the job summary.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim import engine, engine_reference  # noqa: E402

SCHEMA = "engine-bench/v1"


def pure_timeout(sim_cls, n: int) -> int:
    sim = sim_cls()

    def body():
        for _ in range(n):
            yield sim.timeout(100)

    sim.process(body())
    sim.run()
    return n


def timer_wheel(sim_cls, n: int) -> int:
    # Deterministic LCG so both engines see the same delay sequence.
    delays = (0, 1, 17, 1023, 1024, 2048, 9973, 262_143, 262_145,
              1_000_000)
    sim = sim_cls()
    state = 0x2545F491
    posted = 0
    while posted < n:
        for _ in range(min(256, n - posted)):
            state = (state * 6364136223846793005 + 1442695040888963407) \
                % (1 << 64)
            sim.timeout(delays[state % len(delays)])
            posted += 1
        sim.run()
    return n


def event_churn(sim_cls, n: int) -> int:
    sim = sim_cls()
    done = 0
    while done < n:
        for _ in range(min(512, n - done)):
            sim.event().succeed()
            done += 1
        sim.run()
    return n


def full_stack(n: int) -> int:
    """fio ops through the whole machine on the *active* engine (the
    one ``REPRO_ENGINE`` selects for this interpreter)."""
    from repro import GiB, Machine
    from repro.apps.fio import FioJob, run_fio

    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                capture_data=False)
    job = FioJob(engine="bypassd", rw="randread", block_size=4096,
                 file_size=8 << 20, threads=2, processes=2,
                 ops_per_thread=n // 4, seed=7)
    run_fio(m, job)
    return (n // 4) * 4


def _time(fn, *args) -> tuple:
    t0 = time.perf_counter()
    ops = fn(*args)
    dt = time.perf_counter() - t0
    return ops, dt, ops / dt if dt > 0 else float("inf")


def _full_stack_subprocess(reference: bool, n: int) -> float:
    """ops/sec for the full-stack loop in a fresh interpreter, so the
    ``REPRO_ENGINE`` switch can select the engine Machine binds to."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_ENGINE", None)
    if reference:
        env["REPRO_ENGINE"] = "reference"
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--inner-full-stack", str(n)],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        timeout=1800, check=True)
    return float(proc.stdout.strip())


PURE_LOOPS = [
    ("pure-timeout", pure_timeout),
    ("timer-wheel", timer_wheel),
    ("event-churn", event_churn),
]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="bench_engine", description=__doc__)
    ap.add_argument("--ops", type=int, default=200_000,
                    help="operations per pure loop (default 200000)")
    ap.add_argument("--full-stack-ops", type=int, default=40_000,
                    help="fio ops for the full-stack loop (short runs "
                         "are warmup-dominated and read as noise)")
    ap.add_argument("--json", type=Path, default=None,
                    help="write the artifact JSON here as well")
    ap.add_argument("--inner-full-stack", type=int, default=None,
                    help=argparse.SUPPRESS)
    args = ap.parse_args(argv)

    if args.inner_full_stack is not None:
        ops, dt, rate = _time(full_stack, args.inner_full_stack)
        print(f"{rate:.1f}")
        return 0

    rows = []
    for name, fn in PURE_LOOPS:
        _, _, new_rate = _time(fn, engine.Simulator, args.ops)
        _, _, ref_rate = _time(fn, engine_reference.Simulator, args.ops)
        rows.append({"name": name, "ops": args.ops,
                     "new_ops_per_sec": round(new_rate, 1),
                     "ref_ops_per_sec": round(ref_rate, 1),
                     "speedup": round(new_rate / ref_rate, 2)})
    new_fs = _full_stack_subprocess(False, args.full_stack_ops)
    ref_fs = _full_stack_subprocess(True, args.full_stack_ops)
    rows.append({"name": "full-stack", "ops": args.full_stack_ops,
                 "new_ops_per_sec": round(new_fs, 1),
                 "ref_ops_per_sec": round(ref_fs, 1),
                 "speedup": round(new_fs / ref_fs, 2)})

    doc = {"schema": SCHEMA, "benchmarks": rows}
    for r in rows:
        print(f"{r['name']:<14} new={r['new_ops_per_sec']:>12,.0f}/s "
              f"ref={r['ref_ops_per_sec']:>12,.0f}/s "
              f"speedup={r['speedup']:.2f}x")
    if args.json:
        args.json.write_text(json.dumps(doc, indent=1) + "\n",
                             encoding="utf-8")
    return 0


if __name__ == "__main__":
    sys.exit(main())
