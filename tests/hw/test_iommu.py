"""Unit tests for the IOMMU, its BypassD VBA extension and the IOAT
calibration experiments (Table 4, Figure 5)."""

import pytest

from repro.hw.ioat import IOATEngine
from repro.hw.iommu import IOMMU, TranslationFault
from repro.hw.pagetable import PAGE_SIZE, PageTable
from repro.hw.params import DEFAULT_PARAMS

VA = 0x5000_0000_0000
DEV = 1


def make_iommu(**kwargs):
    iommu = IOMMU(DEFAULT_PARAMS, **kwargs)
    pt = PageTable()
    iommu.bind_pasid(7, pt)
    return iommu, pt


class TestPasidManagement:
    def test_bind_unbind(self):
        iommu, pt = make_iommu()
        assert iommu.table_for(7) is pt
        iommu.unbind_pasid(7)
        with pytest.raises(TranslationFault):
            iommu.table_for(7)

    def test_double_bind_rejected(self):
        iommu, _ = make_iommu()
        with pytest.raises(ValueError):
            iommu.bind_pasid(7, PageTable())


class TestIOVATranslation:
    def test_hit_after_miss(self):
        iommu, pt = make_iommu()
        pt.map_page(VA, pfn=99)
        pfn, cost_miss = iommu.translate_iova(7, VA, write=False)
        assert pfn == 99
        pfn, cost_hit = iommu.translate_iova(7, VA, write=False)
        assert pfn == 99
        assert cost_hit < cost_miss
        assert cost_hit == DEFAULT_PARAMS.iotlb_hit_ns
        assert cost_miss == (DEFAULT_PARAMS.iotlb_hit_ns
                             + DEFAULT_PARAMS.full_pagewalk_ns())

    def test_unmapped_faults(self):
        iommu, _ = make_iommu()
        with pytest.raises(TranslationFault):
            iommu.translate_iova(7, VA, write=False)

    def test_write_to_readonly_faults(self):
        iommu, pt = make_iommu()
        pt.map_page(VA, pfn=1, writable=False)
        iommu.translate_iova(7, VA, write=False)  # read is fine
        with pytest.raises(TranslationFault):
            iommu.translate_iova(7, VA, write=True)

    def test_fte_cannot_be_dma_target(self):
        iommu, pt = make_iommu()
        pt.map_file_page(VA, lba=5, devid=DEV)
        with pytest.raises(TranslationFault):
            iommu.translate_iova(7, VA, write=False)

    def test_iotlb_eviction(self):
        iommu, pt = make_iommu()
        n = DEFAULT_PARAMS.iotlb_entries + 8
        for i in range(n):
            pt.map_page(VA + i * PAGE_SIZE, pfn=i + 1)
            iommu.translate_iova(7, VA + i * PAGE_SIZE, write=False)
        # The first entry was evicted: translating again is a miss.
        before = iommu.pagewalks
        iommu.translate_iova(7, VA, write=False)
        assert iommu.pagewalks == before + 1


class TestVBATranslation:
    def _map_file(self, pt, pages, start_page=1000, writable=True):
        for i in range(pages):
            pt.map_file_page(VA + i * PAGE_SIZE, lba=start_page + i,
                             devid=DEV, writable=writable)

    def test_translate_single_page(self):
        iommu, pt = make_iommu()
        self._map_file(pt, 1)
        result = iommu.translate_vba(7, VA, 4096, write=False,
                                     requester_devid=DEV)
        assert result.pairs == [(1000, 1)]
        # 345 (PCIe) + 22 (ATS) + 183 (walk) = 550: the paper's minimum.
        assert result.cost_ns == 550

    def test_contiguous_pages_coalesce(self):
        iommu, pt = make_iommu()
        self._map_file(pt, 8)
        result = iommu.translate_vba(7, VA, 8 * 4096, write=False,
                                     requester_devid=DEV)
        assert result.pairs == [(1000, 8)]
        assert result.total_pages == 8

    def test_discontiguous_pages_split(self):
        iommu, pt = make_iommu()
        pt.map_file_page(VA, lba=10, devid=DEV)
        pt.map_file_page(VA + PAGE_SIZE, lba=500, devid=DEV)
        result = iommu.translate_vba(7, VA, 2 * 4096, write=False,
                                     requester_devid=DEV)
        assert result.pairs == [(10, 1), (500, 1)]

    def test_subpage_request(self):
        iommu, pt = make_iommu()
        self._map_file(pt, 1)
        result = iommu.translate_vba(7, VA + 512, 512, write=False,
                                     requester_devid=DEV)
        assert result.pairs == [(1000, 1)]

    def test_unmapped_vba_faults(self):
        iommu, pt = make_iommu()
        with pytest.raises(TranslationFault, match="no file table entry"):
            iommu.translate_vba(7, VA, 4096, write=False,
                                requester_devid=DEV)

    def test_regular_pte_rejected_for_vba(self):
        iommu, pt = make_iommu()
        pt.map_page(VA, pfn=5)
        with pytest.raises(TranslationFault, match="regular PTE"):
            iommu.translate_vba(7, VA, 4096, write=False,
                                requester_devid=DEV)

    def test_devid_mismatch_faults(self):
        """A process cannot use a VBA to reach files on another device
        (Section 3.4)."""
        iommu, pt = make_iommu()
        self._map_file(pt, 1)
        with pytest.raises(TranslationFault, match="DevID mismatch"):
            iommu.translate_vba(7, VA, 4096, write=False,
                                requester_devid=DEV + 1)

    def test_write_permission_enforced(self):
        iommu, pt = make_iommu()
        self._map_file(pt, 1, writable=False)
        iommu.translate_vba(7, VA, 4096, write=False,
                            requester_devid=DEV)
        with pytest.raises(TranslationFault, match="read-only"):
            iommu.translate_vba(7, VA, 4096, write=True,
                                requester_devid=DEV)

    def test_ftes_not_cached_by_default(self):
        """Section 4.3: no IOTLB pollution from block translations."""
        iommu, pt = make_iommu()
        self._map_file(pt, 1)
        iommu.translate_vba(7, VA, 4096, write=False,
                            requester_devid=DEV)
        walks_before = iommu.pagewalks
        iommu.translate_vba(7, VA, 4096, write=False,
                            requester_devid=DEV)
        assert iommu.pagewalks == walks_before + 1  # walked again

    def test_fte_caching_ablation(self):
        iommu, pt = make_iommu(cache_ftes=True)
        self._map_file(pt, 1)
        first = iommu.translate_vba(7, VA, 4096, write=False,
                                    requester_devid=DEV)
        second = iommu.translate_vba(7, VA, 4096, write=False,
                                     requester_devid=DEV)
        assert second.cost_ns < first.cost_ns

    def test_invalidate_range_forces_fault(self):
        iommu, pt = make_iommu(cache_ftes=True)
        self._map_file(pt, 1)
        iommu.translate_vba(7, VA, 4096, write=False,
                            requester_devid=DEV)
        pt.unmap_page(VA)
        iommu.invalidate_range(7, VA, 4096)
        with pytest.raises(TranslationFault):
            iommu.translate_vba(7, VA, 4096, write=False,
                                requester_devid=DEV)

    def test_disabled_iommu_rejects_vba(self):
        iommu, pt = make_iommu()
        self._map_file(pt, 1)
        iommu.enabled = False
        with pytest.raises(TranslationFault):
            iommu.translate_vba(7, VA, 4096, write=False,
                                requester_devid=DEV)


class TestFigure5Curve:
    """IOMMU overhead versus translations per ATS request."""

    def _walk_cost(self, iommu, pt, pages, align_slot=6):
        base = VA + align_slot * PAGE_SIZE
        for i in range(pages):
            pt.map_file_page(base + i * PAGE_SIZE, lba=2000 + i,
                             devid=DEV)
        result = iommu.translate_vba(7, base, pages * 4096, write=False,
                                     requester_devid=DEV)
        return result.cost_ns - DEFAULT_PARAMS.pcie_round_trip_ns \
            - DEFAULT_PARAMS.ats_processing_ns

    def test_flat_within_cacheline(self):
        """One 64 B cacheline holds 8 FTEs: cost is flat across it."""
        iommu, pt = make_iommu()
        c1 = self._walk_cost(iommu, pt, 1)
        iommu2, pt2 = make_iommu()
        c2 = self._walk_cost(iommu2, pt2, 2)
        assert c1 == c2 == DEFAULT_PARAMS.full_pagewalk_ns()

    def test_bump_then_flat(self):
        """Figure 5: slight increase from 2 to 3 translations, then flat."""
        costs = []
        for pages in range(1, 11):
            iommu, pt = make_iommu()
            costs.append(self._walk_cost(iommu, pt, pages))
        assert costs[1] == costs[0]          # 2 == 1
        assert costs[2] > costs[1]           # bump at 3
        assert costs[2] == costs[8]          # flat 3..9
        assert max(costs) - min(costs) <= 2 * DEFAULT_PARAMS.pagewalk_memref_ns


class TestIOATCalibration:
    """Table 4 reproduction at the unit level."""

    def test_iommu_off(self):
        engine = IOATEngine(DEFAULT_PARAMS, iommu=None)
        timing = engine.copy(0x1000, 0x2000, 64)
        assert timing.total_ns == 1120
        assert timing.translation_ns == 0

    def test_iotlb_hit_costs_14ns(self):
        iommu, pt = make_iommu()
        pt.map_page(VA, pfn=1)
        pt.map_page(VA + PAGE_SIZE, pfn=2)
        engine = IOATEngine(DEFAULT_PARAMS, iommu=iommu, pasid=7)
        engine.copy(VA, VA + PAGE_SIZE, 64)          # warm the IOTLB
        timing = engine.copy(VA, VA + PAGE_SIZE, 64)
        assert timing.total_ns == 1134               # 1120 + 2*7

    def test_iotlb_miss_adds_183ns(self):
        iommu, pt = make_iommu()
        for i in range(200):
            pt.map_page(VA + i * PAGE_SIZE, pfn=i + 1)
        dst = VA
        engine = IOATEngine(DEFAULT_PARAMS, iommu=iommu, pasid=7)
        engine.copy(VA + PAGE_SIZE, dst, 64)
        # Vary the source so it always misses; dst stays hot.
        timing = engine.copy(VA + 100 * PAGE_SIZE, dst, 64)
        assert timing.total_ns == 1317               # 1134 + 183
