"""One positive and one negative fixture per simlint rule."""

import textwrap

from repro.analysis import lint_source


def _lint(code, path="model.py", **kw):
    return lint_source(textwrap.dedent(code), path=path, **kw)


def _ids(violations):
    return [v.rule.id for v in violations]


# -- SIM001: wall-clock / OS entropy ------------------------------------

def test_sim001_flags_wall_clock():
    vs = _lint("""
        import time

        def latency_stamp():
            return time.time()
    """)
    assert "SIM001" in _ids(vs)


def test_sim001_flags_from_import_and_module_random():
    vs = _lint("""
        import os
        import random
        from datetime import datetime

        def entropy():
            a = os.urandom(8)
            b = random.randint(0, 10)
            c = datetime.now()
            return a, b, c
    """)
    assert _ids(vs).count("SIM001") == 3


def test_sim001_ok_with_sim_clock_and_seeded_rng():
    vs = _lint("""
        import random

        def model(sim, seed):
            rng = random.Random(seed)
            return sim.now + rng.randint(0, 10)
    """)
    assert "SIM001" not in _ids(vs)


def test_sim001_flags_numpy_module_random():
    vs = _lint("""
        import numpy as np

        def noise():
            return np.random.rand(4)
    """)
    assert "SIM001" in _ids(vs)


def test_sim001_ok_numpy_seeded_generator():
    vs = _lint("""
        import numpy as np

        def noise(seed):
            rng = np.random.default_rng(seed)
            return rng.random(4)
    """)
    assert _ids(vs) == []


# -- SIM002: unordered iteration feeding scheduling ---------------------

def test_sim002_flags_set_iteration_with_scheduling_body():
    vs = _lint("""
        class Flusher:
            def __init__(self, sim):
                self.sim = sim
                self.pending = set()

            def kick(self):
                for delay in self.pending:
                    self.sim.timeout(delay)
    """)
    assert "SIM002" in _ids(vs)


def test_sim002_flags_dict_view_with_yield_body():
    vs = _lint("""
        class Flusher:
            def drain(self, table):
                for key, ev in table.items():
                    yield ev
    """)
    assert "SIM002" in _ids(vs)


def test_sim002_ok_when_sorted():
    vs = _lint("""
        class Flusher:
            def __init__(self, sim):
                self.sim = sim
                self.pending = set()

            def kick(self):
                for delay in sorted(self.pending):
                    self.sim.timeout(delay)

            def drain(self, table):
                for key, ev in sorted(table.items()):
                    yield ev
    """)
    assert "SIM002" not in _ids(vs)


def test_sim002_ok_without_scheduling_in_body():
    # pure bookkeeping loops over dicts are insertion-ordered and fine
    vs = _lint("""
        class Stats:
            def totals(self, counters):
                out = 0
                for name, n in counters.items():
                    out += n
                return out
    """)
    assert "SIM002" not in _ids(vs)


def test_sim002_flags_set_comprehension_in_generator():
    vs = _lint("""
        class Cache:
            def __init__(self):
                self.dirty = set()

            def writeback(self, io):
                doomed = [k for k in self.dirty]
                for k in doomed:
                    yield io.write(k)
    """)
    assert "SIM002" in _ids(vs)


def test_sim002_ok_comprehension_consumed_by_sorted():
    vs = _lint("""
        class Cache:
            def __init__(self):
                self.dirty = set()

            def writeback(self, io):
                doomed = sorted(k for k in self.dirty)
                for k in doomed:
                    yield io.write(k)
    """)
    assert "SIM002" not in _ids(vs)


# -- SIM003: float into the integer-ns clock ----------------------------

def test_sim003_flags_float_literal_delay():
    vs = _lint("""
        def proc(sim):
            yield sim.timeout(1.5)
    """)
    assert "SIM003" in _ids(vs)


def test_sim003_flags_true_division_delay():
    vs = _lint("""
        def proc(sim, nbytes, rate):
            yield sim.timeout(nbytes / rate)
    """)
    assert "SIM003" in _ids(vs)


def test_sim003_ok_int_cast_and_floor_division():
    vs = _lint("""
        def proc(sim, nbytes, rate):
            yield sim.timeout(int(nbytes / rate))
            yield sim.timeout(nbytes // rate)
            yield sim.timeout(round(nbytes / rate))
    """)
    assert "SIM003" not in _ids(vs)


def test_sim003_flags_float_on_now():
    vs = _lint("""
        def rewind(sim):
            sim.now = 0.5
    """)
    assert "SIM003" in _ids(vs)


# -- SIM004: yielding a raw value ---------------------------------------

def test_sim004_flags_constant_yield_in_process():
    vs = _lint("""
        def proc(sim):
            yield sim.timeout(10)
            yield 42
    """)
    assert "SIM004" in _ids(vs)


def test_sim004_ok_plain_data_generator():
    # a generator that never yields events is not a sim process
    vs = _lint("""
        def walk(tree):
            for node in tree:
                yield node.name, node
    """)
    assert "SIM004" not in _ids(vs)


# -- SIM005: double trigger ---------------------------------------------

def test_sim005_flags_straight_line_double_succeed():
    vs = _lint("""
        def notify(ev):
            ev.succeed(1)
            ev.succeed(2)
    """)
    assert "SIM005" in _ids(vs)


def test_sim005_ok_with_control_flow_between():
    vs = _lint("""
        def notify(ev, redo):
            ev.succeed(1)
            if redo:
                return
            other.succeed(2)
    """)
    assert "SIM005" not in _ids(vs)


def test_sim005_flags_succeed_then_fail():
    vs = _lint("""
        def notify(ev):
            ev.succeed(1)
            ev.fail(RuntimeError("boom"))
    """)
    assert "SIM005" in _ids(vs)


# -- SIM006: swallowed interrupt ----------------------------------------

def test_sim006_flags_empty_interrupt_handler():
    vs = _lint("""
        def proc(sim, ev):
            try:
                yield ev
            except Interrupt:
                pass
    """)
    assert "SIM006" in _ids(vs)


def test_sim006_ok_when_handled():
    vs = _lint("""
        def proc(sim, ev):
            try:
                yield ev
            except Interrupt as intr:
                record(intr.cause)
                return None
    """)
    assert "SIM006" not in _ids(vs)


# -- SIM007: cross-layer private mutation -------------------------------

def test_sim007_flags_foreign_private_write():
    vs = _lint("""
        def setup(engine, size):
            f = engine.create_file(size)
            f._size = size
    """)
    assert "SIM007" in _ids(vs)


def test_sim007_ok_own_attribute_and_module_friend():
    vs = _lint("""
        class File:
            def __init__(self):
                self._size = 0

        def grow(f, n):
            f._size = n   # _size is owned by a class in this module
    """)
    assert "SIM007" not in _ids(vs)


# -- SIM008: missing __slots__ on hot-path classes ----------------------

def test_sim008_flags_hot_dataclass_without_slots():
    vs = _lint("""
        from dataclasses import dataclass

        @dataclass
        class Command:
            opcode: int
            addr: int
    """, is_hot_module=True)
    assert "SIM008" in _ids(vs)


def test_sim008_ok_with_slots_true_or_cold_module():
    hot = _lint("""
        from dataclasses import dataclass

        @dataclass(slots=True)
        class Command:
            opcode: int
    """, is_hot_module=True)
    cold = _lint("""
        from dataclasses import dataclass

        @dataclass
        class Config:
            retries: int
    """, is_hot_module=False)
    assert "SIM008" not in _ids(hot)
    assert "SIM008" not in _ids(cold)


def test_sim008_flags_event_subclass_without_slots():
    vs = _lint("""
        class Sentinel(Event):
            def __init__(self, sim):
                super().__init__(sim)
                self.extra = None
    """, is_hot_module=True)
    assert "SIM008" in _ids(vs)


def test_sim008_exempts_enums():
    vs = _lint("""
        import enum

        class Opcode(enum.Enum):
            READ = 1
    """, is_hot_module=True)
    assert "SIM008" not in _ids(vs)


# -- SIM009: unseeded RNG ------------------------------------------------

def test_sim009_flags_unseeded_constructors():
    vs = _lint("""
        import random
        import numpy as np

        def build():
            a = random.Random()
            b = np.random.default_rng()
            c = random.SystemRandom(1)
            return a, b, c
    """)
    assert _ids(vs).count("SIM009") == 3


def test_sim009_ok_seeded():
    vs = _lint("""
        import random
        import numpy as np

        def build(seed):
            return random.Random(seed), np.random.default_rng(seed)
    """)
    assert "SIM009" not in _ids(vs)


# -- SIM010: id() as key / ordering -------------------------------------

def test_sim010_flags_id_as_container_key():
    vs = _lint("""
        class PerThread:
            def __init__(self):
                self.ctxs = {}

            def ctx(self, thread):
                got = self.ctxs.get(id(thread))
                self.ctxs[id(thread)] = got
                return got
    """)
    assert _ids(vs).count("SIM010") == 2


def test_sim010_flags_sort_by_id():
    vs = _lint("""
        def order(threads):
            return sorted(threads, key=id)
    """)
    assert "SIM010" in _ids(vs)


def test_sim010_ok_deterministic_key():
    vs = _lint("""
        class PerThread:
            def __init__(self):
                self.ctxs = {}

            def ctx(self, thread):
                return self.ctxs.get(thread.tid)
    """)
    assert "SIM010" not in _ids(vs)


# -- SIM011: TimeSeries.samples mutation --------------------------------

def test_sim011_flags_direct_series_mutation():
    vs = _lint("""
        def feed(series, ts):
            series.samples.append((10, 1.0))
            ts.points.extend([(1, 2.0)])
            ts.samples.sort()
    """)
    assert _ids(vs).count("SIM011") == 3


def test_sim011_flags_rebinding_the_sample_list():
    vs = _lint("""
        def reset(series, other):
            series.samples = []
            other.points = list(other.points)
    """)
    assert _ids(vs).count("SIM011") == 2


def test_sim011_ok_record_and_reads():
    vs = _lint("""
        def feed(series):
            series.record(10, 1.0)
            return series.samples[-1], len(series.points)
    """)
    assert "SIM011" not in _ids(vs)


def test_sim011_ok_inside_sim_layer():
    vs = _lint("""
        def record(self, now_ns, value):
            self.samples.append((now_ns, value))
    """, path="src/repro/sim/stats.py")
    assert "SIM011" not in _ids(vs)


def test_sim011_ok_module_owning_its_own_samples_attr():
    # A module that declares its *own* samples attribute (e.g. a
    # dataclass field) is a friend, not a TimeSeries client.
    vs = _lint("""
        class Breakdown:
            samples: list

            def __init__(self):
                self.samples = []

            def add(self, v):
                self.samples.append(v)
    """)
    assert "SIM011" not in _ids(vs)


# -- SIM012: gauge naming scheme ----------------------------------------

def test_sim012_flags_off_scheme_literal_names():
    vs = _lint("""
        def register(metrics):
            metrics.gauge("BadName")
            metrics.gauge("plain")
            metrics.gauge("nvme..double_dot")
            metrics.gauge("nvme.QP1.inflight")
    """)
    assert _ids(vs).count("SIM012") == 4


def test_sim012_ok_compliant_and_dynamic_names():
    vs = _lint("""
        def register(metrics, name):
            metrics.gauge("nvme.qp1.inflight")
            metrics.gauge("kernel.pagecache.hit_rate")
            metrics.gauge("fio.lat_ns")
            metrics.gauge(name)  # dynamic: not statically checkable
    """)
    assert "SIM012" not in _ids(vs)


# -- SIM013: multiprocessing outside bench/runner.py --------------------

def test_sim013_flags_multiprocessing_import():
    vs = _lint("""
        import multiprocessing

        def fan_out(jobs):
            with multiprocessing.Pool(4) as pool:
                return pool.map(str, jobs)
    """)
    assert "SIM013" in _ids(vs)


def test_sim013_flags_pool_from_import():
    vs = _lint("""
        from concurrent.futures import ProcessPoolExecutor

        def fan_out(jobs):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(str, jobs))
    """)
    assert "SIM013" in _ids(vs)


def test_sim013_flags_thread_pool_too():
    # Threads interleave timelines just as nondeterministically.
    vs = _lint("""
        from concurrent.futures import ThreadPoolExecutor
    """)
    assert "SIM013" in _ids(vs)


def test_sim013_ok_inside_bench_runner():
    vs = _lint("""
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import get_context

        def fan_out(jobs):
            ctx = get_context("fork")
            with ProcessPoolExecutor(4, mp_context=ctx) as pool:
                return list(pool.map(str, jobs))
    """, path="src/repro/bench/runner.py")
    assert "SIM013" not in _ids(vs)


def test_sim013_ok_plain_concurrent_futures_types():
    # Importing non-pool names from concurrent.futures is fine.
    vs = _lint("""
        from concurrent.futures import Future

        def pending():
            return Future()
    """)
    assert "SIM013" not in _ids(vs)


# -- SIM014: chaos oracles must not mutate simulation state -------------

ORACLES = "src/repro/chaos/oracles.py"


def test_sim014_flags_attribute_assignment():
    vs = _lint("""
        def check_thing(machine):
            machine.device.counter = 0
            return []
    """, path=ORACLES)
    assert "SIM014" in _ids(vs)


def test_sim014_flags_mutator_call():
    vs = _lint("""
        def check_thing(machine):
            machine.stats.record("reads", 1)
            return []
    """, path=ORACLES)
    assert "SIM014" in _ids(vs)


def test_sim014_flags_subscript_write():
    vs = _lint("""
        def check_thing(machine):
            machine._lost[3] = None
            return []
    """, path=ORACLES)
    assert "SIM014" in _ids(vs)


def test_sim014_flags_augassign_and_delete():
    vs = _lint("""
        def check_thing(qp):
            qp.reaped += 1
            del qp.submitted
            return []
    """, path=ORACLES)
    assert _ids(vs).count("SIM014") == 2


def test_sim014_ok_scratch_containers():
    # Locals bound to fresh containers are the oracle's own scratch
    # space; appending findings to them is the whole point.
    vs = _lint("""
        def check_thing(machine):
            out = []
            seen = set()
            by_name = {s.name: s for s in machine.monitor.config.slos}
            for qp in machine.device.queue_pairs():
                seen.add(qp.qid)
                out.append(("completions", qp.qid))
            counts = dict(by_name)
            counts["total"] = len(seen)
            return out
    """, path=ORACLES)
    assert "SIM014" not in _ids(vs)


def test_sim014_ok_self_and_own_module_attrs():
    vs = _lint("""
        class OracleReport:
            def __init__(self):
                self.items = []

            def add(self, item):
                self.items.append(item)
                self.count = len(self.items)
    """, path=ORACLES)
    assert "SIM014" not in _ids(vs)


def test_sim014_scoped_to_oracle_module():
    # The same mutation is fine anywhere else — the executor *should*
    # drive the machine.
    vs = _lint("""
        def run(machine):
            machine.stats.record("reads", 1)
            machine.device.counter = 0
    """, path="src/repro/chaos/executor.py")
    assert "SIM014" not in _ids(vs)
