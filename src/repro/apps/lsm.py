"""A real LSM-tree key-value store over the simulated SSD.

The paper's production workload is WiredTiger, which "uses an LSM tree
to store data in multiple levels and each level is a single file"
(Section 6.4).  This module implements that design for real — bytes on
the simulated device, recoverable after reopen — as the substantial
end-to-end application of the reproduction:

- an in-memory *memtable* bounded by size,
- a write-ahead log (appends -> the BypassD kernel path, or optimised
  appends),
- sorted-string tables, one file per level, with a block index and a
  bloom filter per table,
- full-level merge compaction cascading down the levels,
- point gets (memtable, then newest level downward) and range scans.

Every byte moves through an engine file (BypassD, sync, ...), so the
store exercises the whole stack: appends through the kernel, block
reads through VBAs, fsync-driven journal commits.
"""

from __future__ import annotations

import struct
from typing import Dict, Generator, List, Optional, Tuple

from ..sim.cpu import Thread

__all__ = ["LSMStore", "BloomFilter", "SSTableInfo"]

BLOCK = 4096
_HDR = struct.Struct("<8s Q Q Q Q")  # magic, records, index_off,
# index_len, bloom_len (bloom follows the padded index)
_MAGIC = b"BYPD-LSM"
_TOMBSTONE = b"\x00\xde\xad\x00"


class BloomFilter:
    """Plain k-hash bloom filter over a bytearray of bits."""

    def __init__(self, bits: int = 8192, hashes: int = 4):
        if bits <= 0 or hashes <= 0:
            raise ValueError("bits and hashes must be positive")
        self.bits = bits
        self.hashes = hashes
        self._bytes = bytearray(-(-bits // 8))
        self.added = 0

    def _positions(self, key: bytes):
        # Deterministic hashes (Python's hash() is salted per process,
        # which would invalidate blooms persisted into SSTables).
        import zlib
        h1 = zlib.crc32(key) & 0xFFFFFFFF
        h2 = zlib.adler32(key) & 0xFFFFFFFF or 0x9E3779B9
        for i in range(self.hashes):
            yield (h1 + i * h2) % self.bits

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bytes[pos // 8] |= 1 << (pos % 8)
        self.added += 1

    def might_contain(self, key: bytes) -> bool:
        return all(self._bytes[pos // 8] & (1 << (pos % 8))
                   for pos in self._positions(key))


class SSTableInfo:
    """In-memory metadata for one on-disk sorted table."""

    def __init__(self, path: str, file, records: int,
                 index: List[Tuple[bytes, int]], bloom: BloomFilter):
        self.path = path
        self.file = file
        self.records = records
        # (first key of block, byte offset of block), sorted.
        self.index = index
        self.bloom = bloom

    def locate(self, key: bytes) -> Optional[int]:
        """Byte offset of the data block that may hold ``key``."""
        import bisect
        keys = [k for k, _ in self.index]
        idx = bisect.bisect_right(keys, key) - 1
        if idx < 0:
            return None
        return self.index[idx][1]


def _encode_records(records: List[Tuple[bytes, bytes]]) -> Tuple[
        bytes, List[Tuple[bytes, int]]]:
    """Pack sorted records into 4 KB blocks; returns (blob, index)."""
    blocks: List[bytes] = []
    index: List[Tuple[bytes, int]] = []
    cur: List[bytes] = []
    cur_len = 0
    first_key: Optional[bytes] = None
    offset = BLOCK  # data starts after the header block

    def seal():
        nonlocal cur, cur_len, first_key, offset
        if not cur:
            return
        blob = b"".join(cur)
        blocks.append(blob + bytes(BLOCK - len(blob)))
        index.append((first_key, offset))
        offset += BLOCK
        cur, cur_len, first_key = [], 0, None

    for key, value in records:
        rec = struct.pack("<HH", len(key), len(value)) + key + value
        if cur_len + len(rec) > BLOCK:
            seal()
        if first_key is None:
            first_key = key
        cur.append(rec)
        cur_len += len(rec)
    seal()
    return b"".join(blocks), index


def _decode_block(blob: bytes) -> List[Tuple[bytes, bytes]]:
    out = []
    pos = 0
    while pos + 4 <= len(blob):
        klen, vlen = struct.unpack_from("<HH", blob, pos)
        if klen == 0:
            break
        pos += 4
        key = blob[pos:pos + klen]
        pos += klen
        value = blob[pos:pos + vlen]
        pos += vlen
        out.append((key, value))
    return out


def _encode_index(index: List[Tuple[bytes, int]]) -> bytes:
    parts = [struct.pack("<I", len(index))]
    for key, offset in index:
        parts.append(struct.pack("<HQ", len(key), offset))
        parts.append(key)
    return b"".join(parts)


def _decode_index(blob: bytes) -> List[Tuple[bytes, int]]:
    (count,) = struct.unpack_from("<I", blob, 0)
    pos = 4
    out = []
    for _ in range(count):
        klen, offset = struct.unpack_from("<HQ", blob, pos)
        pos += 10
        key = blob[pos:pos + klen]
        pos += klen
        out.append((key, offset))
    return out


class LSMStore:
    """Leveled LSM store; all methods are generators on ``thread``."""

    MEMTABLE_LIMIT = 64 * 1024  # bytes of keys+values before flush
    MAX_LEVELS = 6

    MANIFEST_MAGIC = b"BYPD-MAN"

    def __init__(self, machine, proc, engine, thread: Thread,
                 root: str = "/lsm"):
        self.machine = machine
        self.proc = proc
        self.engine = engine
        self.thread = thread
        self.root = root
        self.memtable: Dict[bytes, bytes] = {}
        self.memtable_bytes = 0
        self.levels: List[Optional[SSTableInfo]] = [None] * self.MAX_LEVELS
        self.wal = None
        self.manifest = None
        self._table_seq = 0
        self.flushes = 0
        self.compactions = 0
        self.bloom_skips = 0

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, machine, proc, engine, thread,
               root: str = "/lsm") -> Generator:
        store = cls(machine, proc, engine, thread, root)
        store.wal = yield from engine.open(thread, f"{root}.wal",
                                           write=True, create=True)
        store.manifest = yield from engine.open(
            thread, f"{root}.manifest", write=True, create=True)
        return store

    @classmethod
    def open(cls, machine, proc, engine, thread,
             root: str = "/lsm") -> Generator:
        """Recover a store after a crash or clean shutdown: reload the
        manifest's tables (indexes and bloom filters from disk) and
        replay the write-ahead log into the memtable."""
        store = cls(machine, proc, engine, thread, root)
        store.manifest = yield from engine.open(
            thread, f"{root}.manifest", write=True)
        yield from store._load_manifest()
        store.wal = yield from engine.open(thread, f"{root}.wal",
                                           write=True)
        yield from store._replay_wal()
        return store

    def _load_manifest(self) -> Generator:
        size = self.manifest.size
        if size == 0:
            return
        n, blob = yield from self.manifest.pread(self.thread, 0, size)
        if blob is None or not blob.startswith(self.MANIFEST_MAGIC):
            raise ValueError("corrupt LSM manifest")
        pos = len(self.MANIFEST_MAGIC)
        (seq, count) = struct.unpack_from("<QI", blob, pos)
        pos += 12
        self._table_seq = seq
        for _ in range(count):
            level, plen = struct.unpack_from("<IH", blob, pos)
            pos += 6
            path = blob[pos:pos + plen].decode()
            pos += plen
            table = yield from self._load_table(path)
            self.levels[level] = table

    def _load_table(self, path: str) -> Generator:
        f = yield from self.engine.open(self.thread, path, write=True)
        n, hdr = yield from f.pread(self.thread, 0, BLOCK)
        magic, records, index_off, index_len, bloom_len = \
            _HDR.unpack_from(hdr, 0)
        if magic != _MAGIC:
            raise ValueError(f"bad SSTable magic in {path}")
        index_span = index_len + (-index_len % BLOCK)
        n, index_blob = yield from f.pread(self.thread, index_off,
                                           index_span)
        index = _decode_index(index_blob[:index_len])
        bloom = BloomFilter()
        if bloom_len:
            bloom_span = bloom_len + (-bloom_len % BLOCK)
            n, bloom_blob = yield from f.pread(
                self.thread, index_off + index_span, bloom_span)
            bloom._bytes = bytearray(bloom_blob[:bloom_len])
        return SSTableInfo(path, f, records, index, bloom)

    def _replay_wal(self) -> Generator:
        size = self.wal.size
        if size == 0:
            return
        n, blob = yield from self.wal.pread(self.thread, 0, size)
        pos = 0
        while pos + 4 <= n:
            klen, vlen = struct.unpack_from("<HH", blob, pos)
            if klen == 0:
                break
            pos += 4
            key = blob[pos:pos + klen]
            pos += klen
            value = blob[pos:pos + vlen]
            pos += vlen
            old = self.memtable.get(key)
            if old is not None:
                self.memtable_bytes -= klen + len(old)
            self.memtable[key] = value
            self.memtable_bytes += klen + vlen

    def _write_manifest(self) -> Generator:
        parts = [self.MANIFEST_MAGIC,
                 struct.pack("<QI", self._table_seq,
                             sum(1 for t in self.levels
                                 if t is not None))]
        for level, table in enumerate(self.levels):
            if table is None:
                continue
            encoded = table.path.encode()
            parts.append(struct.pack("<IH", level, len(encoded)))
            parts.append(encoded)
        blob = b"".join(parts)
        fd = (self.manifest.state.fd if hasattr(self.manifest, "state")
              else self.manifest.fd)
        yield from self.machine.kernel.sys_ftruncate(
            self.proc, self.thread, fd, 0)
        if hasattr(self.manifest, "state"):
            self.manifest.state.size = 0
            self.manifest.state.prealloc_end = 0
        yield from self.manifest.append(self.thread, len(blob), blob)
        yield from self.manifest.fsync(self.thread)

    # -- write path -----------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> Generator:
        if not key or len(key) > 255 or len(value) > 2048:
            raise ValueError("bad key/value size")
        record = struct.pack("<HH", len(key), len(value)) + key + value
        yield from self.wal.append(self.thread, len(record), record)
        old = self.memtable.get(key)
        if old is not None:
            self.memtable_bytes -= len(key) + len(old)
        self.memtable[key] = value
        self.memtable_bytes += len(key) + len(value)
        if self.memtable_bytes >= self.MEMTABLE_LIMIT:
            yield from self.flush()

    def delete(self, key: bytes) -> Generator:
        yield from self.put(key, _TOMBSTONE)

    # -- flush & compaction ---------------------------------------------------

    def flush(self) -> Generator:
        """Write the memtable as a new level-0 table, cascading merges
        down whenever a level is already occupied."""
        if not self.memtable:
            return
        self.flushes += 1
        records = sorted(self.memtable.items())
        incoming = yield from self._write_table(records)
        self.memtable.clear()
        self.memtable_bytes = 0
        yield from self._install(0, incoming)
        yield from self._write_manifest()
        # The WAL is durable up to here; start a fresh one.
        yield from self.wal.fsync(self.thread)
        yield from self.machine.kernel.sys_ftruncate(
            self.proc, self.thread, self.wal.state.fd
            if hasattr(self.wal, "state") else self.wal.fd, 0)
        if hasattr(self.wal, "state"):
            self.wal.state.size = 0
            self.wal.state.prealloc_end = 0

    def _install(self, level: int, table: SSTableInfo) -> Generator:
        if level >= self.MAX_LEVELS:
            raise RuntimeError("LSM levels exhausted")
        resident = self.levels[level]
        if resident is None:
            self.levels[level] = table
            return
        # Merge the incoming (newer) table over the resident one and
        # push the result one level down.
        self.compactions += 1
        merged_records = yield from self._read_all(table, resident)
        new_table = yield from self._write_table(merged_records)
        self.levels[level] = None
        yield from self._drop_table(table)
        yield from self._drop_table(resident)
        yield from self._install(level + 1, new_table)

    def _read_all(self, newer: SSTableInfo,
                  older: SSTableInfo) -> Generator:
        out: Dict[bytes, bytes] = {}
        for table in (older, newer):  # newer wins
            for _first, offset in table.index:
                n, blob = yield from table.file.pread(self.thread,
                                                      offset, BLOCK)
                for key, value in _decode_block(blob):
                    out[key] = value
        # Drop tombstones when they reach the deepest merge.
        return sorted((k, v) for k, v in out.items()
                      if v != _TOMBSTONE)

    def _write_table(self, records) -> Generator:
        self._table_seq += 1
        path = f"{self.root}.sst{self._table_seq}"
        f = yield from self.engine.open(self.thread, path, write=True,
                                        create=True)
        data, index = _encode_records(records)
        index_blob = _encode_index(index)
        bloom = BloomFilter()
        for key, _value in records:
            bloom.add(key)
        bloom_blob = bytes(bloom._bytes)
        header = _HDR.pack(_MAGIC, len(records), BLOCK + len(data),
                           len(index_blob), len(bloom_blob))
        yield from f.append(self.thread, BLOCK,
                            header + bytes(BLOCK - len(header)))
        if data:
            yield from f.append(self.thread, len(data), data)
        padded_index = index_blob + bytes(
            -len(index_blob) % BLOCK)
        yield from f.append(self.thread, len(padded_index), padded_index)
        padded_bloom = bloom_blob + bytes(-len(bloom_blob) % BLOCK)
        yield from f.append(self.thread, len(padded_bloom), padded_bloom)
        yield from f.fsync(self.thread)
        return SSTableInfo(path, f, len(records), index, bloom)

    def _drop_table(self, table: SSTableInfo) -> Generator:
        yield from table.file.close(self.thread)
        yield from self.machine.kernel.sys_unlink(self.proc, self.thread,
                                                  table.path)

    # -- read path -----------------------------------------------------------

    def get(self, key: bytes) -> Generator:
        value = self.memtable.get(key)
        if value is not None:
            return None if value == _TOMBSTONE else value
        for table in self.levels:
            if table is None:
                continue
            if not table.bloom.might_contain(key):
                self.bloom_skips += 1
                continue
            offset = table.locate(key)
            if offset is None:
                continue
            n, blob = yield from table.file.pread(self.thread, offset,
                                                  BLOCK)
            for k, v in _decode_block(blob):
                if k == key:
                    return None if v == _TOMBSTONE else v
        return None

    def scan(self, start: bytes, count: int) -> Generator:
        """Merged range scan across the memtable and every level."""
        found: Dict[bytes, bytes] = {}
        # Deepest level first so newer levels overwrite.
        for table in reversed([t for t in self.levels if t is not None]):
            import bisect
            keys = [k for k, _ in table.index]
            idx = max(0, bisect.bisect_right(keys, start) - 1)
            for _first, offset in table.index[idx:]:
                n, blob = yield from table.file.pread(self.thread,
                                                      offset, BLOCK)
                records = _decode_block(blob)
                for k, v in records:
                    if k >= start:
                        found[k] = v
                if len([k for k in found if k >= start]) >= count * 2:
                    break
        for k, v in self.memtable.items():
            if k >= start:
                found[k] = v
        ordered = sorted((k, v) for k, v in found.items()
                         if k >= start and v != _TOMBSTONE)
        return ordered[:count]

    # -- stats -----------------------------------------------------------------

    @property
    def resident_tables(self) -> int:
        return sum(1 for t in self.levels if t is not None)

    def total_records_on_disk(self) -> int:
        return sum(t.records for t in self.levels if t is not None)
