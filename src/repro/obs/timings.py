"""Machine-readable benchmark timing records (``bench-timings.json``).

The parallel experiment runner (:mod:`repro.bench.runner`) measures two
clocks per job: host wall time (how long the orchestrator waited) and
simulated time (the sum of ``machine.now`` over every machine the
experiment built).  The first is what CI sharding balances on; the
second is the deterministic "size" of the experiment and is identical
across hosts.

The on-disk schema is versioned and deliberately flat so shell tooling
(``jq``, ``scripts/ci_shard.py``, ``scripts/ci_summary.py``) can
consume it without importing the simulator::

    {
      "schema": 1,
      "tree": "<sha256 of src/repro>",
      "jobs": 4,
      "start_method": "fork",
      "total_wall_s": 12.5,
      "experiments": [
        {"experiment": "fig6", "wall_s": 3.1, "sim_time_ns": 812000,
         "machines": 30, "cached": false, "ok": true},
        ...
      ]
    }

``experiments`` is sorted by experiment name, so two dumps of the same
run diff cleanly; only the ``wall_s``/``total_wall_s`` fields are
host-dependent.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["TIMINGS_SCHEMA", "JobTiming", "write_timings",
           "load_timings", "timing_weights", "slowest"]

TIMINGS_SCHEMA = 1


@dataclass(frozen=True)
class JobTiming:
    """One experiment's cost, as measured by the runner."""

    experiment: str
    wall_s: float          # host wall-clock (0.0 for cache hits)
    sim_time_ns: int       # total simulated time across built machines
    machines: int          # machines the experiment constructed
    cached: bool           # served from the result cache
    ok: bool               # experiment completed without raising

    def to_dict(self) -> Dict[str, object]:
        d = asdict(self)
        d["wall_s"] = round(self.wall_s, 4)
        return d


def write_timings(path: Union[str, Path],
                  timings: Sequence[JobTiming], *,
                  tree: str = "",
                  jobs: int = 1,
                  start_method: str = "",
                  total_wall_s: float = 0.0) -> str:
    """Write a timings dump; returns the path written."""
    payload = {
        "schema": TIMINGS_SCHEMA,
        "tree": tree,
        "jobs": jobs,
        "start_method": start_method,
        "total_wall_s": round(total_wall_s, 4),
        "experiments": [t.to_dict() for t in
                        sorted(timings, key=lambda t: t.experiment)],
    }
    p = Path(path)
    if p.parent != Path(""):
        p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                 encoding="utf-8")
    return str(p)


def load_timings(path: Union[str, Path]) -> Dict[str, object]:
    """Load a timings dump, validating the schema version."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = data.get("schema")
    if schema != TIMINGS_SCHEMA:
        raise ValueError(
            f"{path}: unsupported timings schema {schema!r} "
            f"(expected {TIMINGS_SCHEMA})")
    return data


def timing_weights(data: Dict[str, object],
                   key: str = "wall_s") -> Dict[str, float]:
    """``experiment -> weight`` from a loaded dump (sharding input).

    Cache hits report ~0 wall seconds, which would starve the balancer;
    they fall back to simulated milliseconds so every experiment keeps
    a meaningful relative size.
    """
    out: Dict[str, float] = {}
    experiments: List[dict] = data.get("experiments", [])  # type: ignore
    for entry in experiments:
        name = entry.get("experiment")
        if not name:
            continue
        weight = float(entry.get(key, 0.0) or 0.0)
        if weight <= 0.0:
            weight = float(entry.get("sim_time_ns", 0) or 0) / 1e6
        out[str(name)] = weight
    return out


def slowest(data: Dict[str, object], n: int = 10) -> List[dict]:
    """The ``n`` slowest experiment entries by wall time (ties by
    name, so the listing is deterministic)."""
    experiments: List[dict] = list(data.get("experiments", []))  # type: ignore
    experiments.sort(key=lambda e: (-float(e.get("wall_s", 0.0) or 0.0),
                                    str(e.get("experiment", ""))))
    return experiments[:n]
