"""Shared helpers for workload generators."""

from __future__ import annotations

from typing import Generator, List

from ..machine import Machine

__all__ = ["materialize_file", "StartGate", "CHUNK"]

CHUNK = 1024 * 1024


class StartGate:
    """Barrier separating setup (open, cold fmap) from measurement.

    Workers call ``yield from gate.arrive(thread)`` once their files are
    open; when all ``expected`` workers have arrived the gate opens,
    the registered counters start, and everyone proceeds — so
    measurement windows never include setup costs.
    """

    def __init__(self, machine: Machine, expected: int, counters=()):
        self.machine = machine
        self.expected = expected
        self.counters = list(counters)
        self._arrived = 0
        self._go = machine.sim.event()

    def arrive(self, thread) -> Generator:
        self._arrived += 1
        if self._arrived == self.expected:
            for counter in self.counters:
                counter.start(self.machine.now)
            self._go.succeed()
        if not self._go.triggered:
            yield from thread.block(self._go)


def materialize_file(machine: Machine, proc, engine, path: str,
                     size: int) -> Generator:
    """Create ``path`` with ``size`` bytes of mapped blocks.

    Uses the kernel interface (fallocate) regardless of the engine so
    the setup cost never pollutes measurements; SPDK files live in the
    engine's own namespace instead.
    """
    thread = proc.new_thread(f"{proc.name}-setup")
    if engine is not None and getattr(engine, "name", "") == "spdk":
        f = engine.create_file(path, size)
        # Mark the whole capacity as written so reads are in-bounds.
        f.mark_written(size)
        return
    from ..kernel.process import O_CREAT, O_RDWR
    kernel = machine.kernel
    fd = yield from kernel.sys_open(proc, thread, path,
                                    O_RDWR | O_CREAT)
    yield from kernel.sys_fallocate(proc, thread, fd, 0, size)
    yield from kernel.sys_fsync(proc, thread, fd)
    yield from kernel.sys_close(proc, thread, fd)
    thread.release_core()
