"""Filesystem geometry and the superblock.

The layout mirrors a small ext4: a superblock, a journal area, an inode
table region, then data blocks.  Filesystem blocks are 4 KB and map
1:1 onto device pages (the Optane P5800X's native 4 KB block), so a
file's extent tree directly yields the device page numbers that
BypassD packs into File Table Entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Superblock", "FS_BLOCK_SIZE"]

FS_BLOCK_SIZE = 4096


@dataclass
class Superblock:
    """Geometry and counters for one mounted filesystem."""

    total_blocks: int
    journal_blocks: int = 2048
    inode_count: int = 1 << 20
    block_size: int = FS_BLOCK_SIZE
    mounted: bool = field(default=False, init=False)
    mount_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.total_blocks <= self.first_data_block:
            raise ValueError(
                f"filesystem too small: {self.total_blocks} blocks, "
                f"needs more than {self.first_data_block}"
            )

    @property
    def journal_start(self) -> int:
        return 64  # superblock + group descriptors

    @property
    def inode_table_start(self) -> int:
        return self.journal_start + self.journal_blocks

    @property
    def inode_table_blocks(self) -> int:
        # 256-byte inodes, 16 per block.
        return (self.inode_count + 15) // 16

    @property
    def first_data_block(self) -> int:
        return self.inode_table_start + self.inode_table_blocks

    @property
    def data_blocks(self) -> int:
        return self.total_blocks - self.first_data_block

    def capacity_bytes(self) -> int:
        return self.data_blocks * self.block_size
