"""Parallel vs serial determinism of the experiment runner.

The runner's core promise: ``--jobs 4`` produces byte-identical merged
output to ``--jobs 1``, for every start method, with or without fault
injection and telemetry.  These tests pin that promise on a cheap
5-experiment subset (~0.5 s simulated serially).
"""

import io
import multiprocessing

import pytest

from repro.bench.runner import run_experiments

SUBSET = ["table1", "table2", "table4", "fig5", "fig12"]

START_METHODS = [m for m in ("fork", "spawn")
                 if m in multiprocessing.get_all_start_methods()]


def run(names, **kw):
    out, err = io.StringIO(), io.StringIO()
    report = run_experiments(names, out=out, err=err, **kw)
    assert report.ok, err.getvalue()
    return out.getvalue(), report


@pytest.fixture(scope="module")
def serial():
    return run(SUBSET, jobs=1)


@pytest.mark.parametrize("start_method", START_METHODS)
def test_parallel_output_byte_identical(serial, start_method):
    serial_out, serial_report = serial
    par_out, par_report = run(SUBSET, jobs=4, start_method=start_method)
    assert par_out == serial_out
    assert par_report.merged_counters() == serial_report.merged_counters()
    # Workers really built machines (the experiments simulate).
    sim_ns = [t.sim_time_ns for t in par_report.timings()]
    assert any(ns > 0 for ns in sim_ns)


def test_parallel_stats_identical_to_serial(serial):
    _, serial_report = serial
    _, par_report = run(SUBSET, jobs=4, start_method="fork")
    for s, p in zip(serial_report.results, par_report.results):
        assert s.experiment == p.experiment
        assert s.payload["table"] == p.payload["table"]
        assert s.payload["fingerprint"] == p.payload["fingerprint"]
        # Simulated time is part of the determinism contract; wall
        # time is not.
        assert (s.payload["timing"]["sim_time_ns"]
                == p.payload["timing"]["sim_time_ns"])
        assert (s.payload["timing"]["machines"]
                == p.payload["timing"]["machines"])


@pytest.mark.parametrize("start_method", START_METHODS)
def test_faults_and_monitor_parity(start_method):
    kw = dict(faults="seed=9,media_error_rate=0.001", monitor=True)
    serial_out, serial_report = run(["table4", "fig12"], jobs=1, **kw)
    par_out, par_report = run(["table4", "fig12"], jobs=2,
                              start_method=start_method, **kw)
    assert par_out == serial_out
    assert (par_report.merged_fault_summary()
            == serial_report.merged_fault_summary())
    assert "telemetry [table4]" in par_out


def test_request_order_preserved_not_registry_order(serial):
    reordered = list(reversed(SUBSET))
    out, report = run(reordered, jobs=4, start_method="fork")
    assert [r.experiment for r in report.results] == reordered
    serial_out, _ = run(reordered, jobs=1)
    assert out == serial_out
