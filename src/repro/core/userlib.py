"""UserLib: the LD_PRELOAD-style interception shim (Sections 3.2, 4.2).

UserLib owns the userspace half of the BypassD interface:

- per-thread NVMe queue pairs (registered with the process's PASID) and
  pinned DMA buffers, so threads never synchronise on the data path;
- interception of read/write: all reads and non-extending writes go
  straight to the device with Virtual Block Addresses, everything that
  modifies metadata is forwarded to the kernel (Table 3);
- partial-write serialisation: sub-sector writes are read-modify-write
  and concurrent RMWs to overlapping sectors are ordered (Section 4.5.1);
- the fault-and-fallback protocol: on a translation fault UserLib
  re-issues fmap(); a zero VBA means access was revoked and the file
  permanently drops to the kernel interface (Section 3.6).  Transient
  device errors (media faults, host aborts) are retried with the same
  bounded backoff the kernel driver uses before surfacing ``EIO``, and
  lost completions are timed out and aborted so the polling thread is
  never stranded;
- optional optimised appends that pre-allocate with fallocate() and
  overwrite from userspace (Section 5.1).

Applications see :class:`BypassDFile`, which mirrors the POSIX calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ..hw.memory import DMABuffer, PhysicalMemory
from ..kernel.blockio import IOError_
from ..kernel.process import O_CREAT, O_DIRECT, O_RDONLY, O_RDWR, Process
from ..kernel.syscalls import Kernel
from ..nvme.device import NVMeDevice
from ..nvme.queues import QueuePair
from ..nvme.spec import AddressKind, Command, Opcode, Status
from ..sim.cpu import Thread
from ..sim.engine import Event, Simulator

__all__ = ["UserLib", "BypassDFile", "FileState"]

SECTOR = 512
_DMA_BUFFER_BYTES = 256 * 1024
_PREALLOC_CHUNK = 4 * 1024 * 1024
_MAX_FAULT_RETRIES = 3


@dataclass
class FileState:
    """UserLib's per-open-file record (flags, offset, size, VBA)."""

    fd: int
    path: str
    inode: object
    vba: int
    writable: bool
    size: int
    offset: int = 0
    fallback: bool = False
    prealloc_end: int = 0
    # Offsets of in-flight partial (sub-sector) writes -> completion event.
    partial_writes: Dict[Tuple[int, int], Event] = field(default_factory=dict)
    # Non-blocking mode: in-flight async overwrites, byte range -> event.
    pending_writes: Dict[Tuple[int, int], Event] = field(
        default_factory=dict)

    @property
    def direct(self) -> bool:
        return self.vba != 0 and not self.fallback


class _ThreadCtx:
    """Per-thread queue pair + DMA buffer."""

    def __init__(self, qp: QueuePair, buf: DMABuffer):
        self.qp = qp
        self.buf = buf


class UserLib:
    """One instance per process (threads share it, Section 4.5.1)."""

    def __init__(self, sim: Simulator, proc: Process, kernel: Kernel,
                 device: NVMeDevice, memory: PhysicalMemory,
                 optimized_appends: bool = False,
                 nonblocking_writes: bool = False):
        self.sim = sim
        self.proc = proc
        self.kernel = kernel
        self.device = device
        self.memory = memory
        self.params = kernel.params
        self.optimized_appends = optimized_appends
        # Section 5.1 enhancement: overwrites return once submitted;
        # reads serialise against overlapping in-flight writes
        # (CrossFS-style per-inode range ordering) and fsync drains.
        self.nonblocking_writes = nonblocking_writes
        self._ctxs: Dict[int, _ThreadCtx] = {}
        self.files: Dict[int, FileState] = {}
        self.direct_reads = 0
        self.direct_writes = 0
        self.kernel_fallbacks = 0
        self.faults_handled = 0
        # Async writes whose completion reported an error (e.g. access
        # revoked mid-flight); surfaced at the next fsync.
        self.async_write_errors = 0
        # Transient device errors retried on the direct path, commands
        # that exhausted retries, and lost completions timed out/aborted.
        self.io_retries = 0
        self.io_errors = 0
        self.io_timeouts = 0
        self.io_aborts = 0
        # High-water marks the chaos retry-bounds oracle reads: the
        # deepest error-retry count any command reached and the largest
        # backoff slept (mirrors repro.kernel.blockio).
        self.max_error_retries = 0
        self.max_backoff_ns = 0

    # -- setup ------------------------------------------------------------

    def _ctx(self, thread: Thread) -> _ThreadCtx:
        ctx = self._ctxs.get(thread.tid)
        if ctx is None:
            qp = self.device.create_queue_pair(pasid=self.proc.pasid,
                                               depth=1024)
            buf = self.memory.alloc_dma_buffer(_DMA_BUFFER_BYTES,
                                               self.proc.pasid)
            # Map the pinned buffer so the IOMMU can validate device DMA.
            pt = self.proc.aspace.page_table
            for i, frame in enumerate(buf.frames):
                pt.map_page(buf.iova + i * 4096, frame, writable=True)
            ctx = _ThreadCtx(qp, buf)
            self._ctxs[thread.tid] = ctx
        return ctx

    # -- open/close ---------------------------------------------------------

    def open(self, thread: Thread, path: str, write: bool = False,
             create: bool = False) -> Generator:
        """Open + fmap; returns a :class:`BypassDFile`."""
        flags = (O_RDWR if write else O_RDONLY) | O_DIRECT
        if create:
            flags |= O_CREAT
        fd = yield from self.kernel.sys_open(self.proc, thread, path,
                                             flags, bypass_intent=True)
        vba = yield from self.kernel.sys_fmap(self.proc, thread, fd)
        fdesc = self.proc.get_fd(fd)
        state = FileState(fd=fd, path=path, inode=fdesc.inode, vba=vba,
                          writable=write, size=fdesc.inode.size)
        if vba == 0:
            # Not eligible: behave as a plain kernel-interface open.
            state.fallback = True
            fdesc.inode.kernel_openers += 1
            self.kernel_fallbacks += 1
        self.files[fd] = state
        return BypassDFile(self, state)

    def close(self, thread: Thread, state: FileState) -> Generator:
        if state.pending_writes:
            yield from self.drain_writes(thread, state)
        yield from self.kernel.sys_close(self.proc, thread, state.fd)
        self.files.pop(state.fd, None)

    # -- reads ------------------------------------------------------------

    def pread(self, thread: Thread, state: FileState, offset: int,
              nbytes: int) -> Generator:
        """Returns (bytes_read, payload-or-None)."""
        tracer = self.kernel.tracer
        op = tracer.begin("op", "pread", thread=thread)
        try:
            if not state.direct:
                return (yield from self._kernel_read(thread, state,
                                                     offset, nbytes))
            self._refresh_size(state)
            n = max(0, min(nbytes, state.size - offset))
            if n == 0:
                return 0, b""
            if self.nonblocking_writes and state.pending_writes:
                # Reads must see the latest data: order behind
                # overlapping in-flight writes (Section 5.1's
                # consistency cost).
                yield from self._wait_pending(thread, state, offset, n)
            token = tracer.begin("user", "submit", thread=thread)
            yield from thread.compute(self.params.userlib_submit_ns)
            tracer.end(token)
            aligned_off = (offset // SECTOR) * SECTOR
            aligned_len = -(-(offset - aligned_off + n) // SECTOR) * SECTOR
            completion = yield from self._issue(
                thread, state, Opcode.READ, aligned_off, aligned_len, None)
            if completion is None:
                # Access revoked mid-stream; retry through the kernel.
                return (yield from self._kernel_read(thread, state,
                                                     offset, nbytes))
            self.direct_reads += 1
            token = tracer.begin("user", "complete+copy", thread=thread)
            yield from thread.compute(self.params.userlib_complete_ns
                                      + self.params.memcpy_ns(n))
            tracer.end(token)
            data = None
            if completion.data is not None:
                skip = offset - aligned_off
                data = completion.data[skip:skip + n]
            return n, data
        finally:
            tracer.end(op)

    # -- writes ------------------------------------------------------------

    def pwrite(self, thread: Thread, state: FileState, offset: int,
               nbytes: int, data: Optional[bytes] = None) -> Generator:
        """Returns bytes written."""
        tracer = self.kernel.tracer
        op = tracer.begin("op", "pwrite", thread=thread)
        try:
            if not state.direct:
                return (yield from self.kernel.sys_pwrite(
                    self.proc, thread, state.fd, offset, nbytes, data))
            if not state.writable:
                raise PermissionError("file opened read-only")
            self._refresh_size(state)
            if offset + nbytes > state.size:
                return (yield from self._extending_write(
                    thread, state, offset, nbytes, data))
            if offset % SECTOR or nbytes % SECTOR:
                return (yield from self._partial_write(
                    thread, state, offset, nbytes, data))
            return (yield from self._overwrite(thread, state, offset,
                                               nbytes, data))
        finally:
            tracer.end(op)

    @staticmethod
    def _refresh_size(state: FileState) -> None:
        """Track the file size UserLib-side.

        With optimised appends the filesystem size includes fallocate
        padding, so UserLib's own logical size is authoritative; plain
        files may have grown through kernel-path operations.
        """
        if not state.prealloc_end:
            state.size = max(state.size, state.inode.size)

    def _overwrite(self, thread: Thread, state: FileState, offset: int,
                   nbytes: int, data: Optional[bytes]) -> Generator:
        """Sector-aligned overwrite: pure userspace."""
        if self.nonblocking_writes:
            return (yield from self._overwrite_async(
                thread, state, offset, nbytes, data))
        yield from thread.compute(self.params.userlib_submit_ns
                                  + self.params.memcpy_ns(nbytes))
        completion = yield from self._issue(
            thread, state, Opcode.WRITE, offset, nbytes, data)
        if completion is None:
            return (yield from self.kernel.sys_pwrite(
                self.proc, thread, state.fd, offset, nbytes, data))
        self.direct_writes += 1
        yield from thread.compute(self.params.userlib_complete_ns)
        return nbytes

    def _overwrite_async(self, thread: Thread, state: FileState,
                         offset: int, nbytes: int,
                         data: Optional[bytes]) -> Generator:
        """Non-blocking overwrite (Section 5.1): submit and return."""
        yield from thread.compute(self.params.userlib_submit_ns
                                  + self.params.memcpy_ns(nbytes))
        # Order against any overlapping write already in flight.
        yield from self._wait_pending(thread, state, offset, nbytes)
        ctx = self._ctx(thread)
        # Backpressure: never outrun the submission queue.
        tracer = self.kernel.tracer
        while ctx.qp.inflight >= ctx.qp.depth - 1:
            oldest = next(iter(state.pending_writes.values()), None)
            if oldest is None:
                break
            stall_t0 = self.sim.now
            yield from thread.block(oldest)
            tracer.add_wait("sq_full", self.sim.now - stall_t0,
                            thread=thread)
        cmd = Command(Opcode.WRITE, addr=state.vba + offset,
                      nbytes=nbytes, addr_kind=AddressKind.VBA,
                      buffer_iova=ctx.buf.iova, data=data)
        self.kernel.tracer.stamp(cmd, thread=thread)
        ev = self.device.submit(ctx.qp, cmd)
        if self.device.injector.may_drop:
            self.sim.process(self._async_abort_guard(ctx.qp, cmd, ev),
                             name=f"userlib-timeout-{cmd.cid}")
        key = (offset, offset + nbytes)
        done = self.sim.event()
        state.pending_writes[key] = done

        def on_complete(event, key=key, done=done):
            state.pending_writes.pop(key, None)
            if not event.value.ok:
                self.async_write_errors += 1
            done.succeed(event.value)

        ev.add_callback(on_complete)
        self.direct_writes += 1
        return nbytes

    def _async_abort_guard(self, qp: QueuePair, cmd: Command,
                           ev: Event) -> Generator:
        """Abort a non-blocking write whose completion never arrived;
        the ABORTED CQE flows into the normal completion callback and
        is counted as an async write error, surfaced at fsync."""
        yield self.sim.timeout(self.params.io_timeout_ns)
        if ev.triggered:
            return
        self.io_timeouts += 1
        if self.device.abort(qp, cmd.cid):
            self.io_aborts += 1

    def _wait_pending(self, thread: Thread, state: FileState,
                      offset: int, nbytes: int) -> Generator:
        """Block until no in-flight async write overlaps the range."""
        end = offset + nbytes
        while True:
            blockers = [ev for (lo, hi), ev in
                        state.pending_writes.items()
                        if lo < end and offset < hi]
            if not blockers:
                return
            yield from thread.block(blockers[0])

    def drain_writes(self, thread: Thread,
                     state: FileState) -> Generator:
        """Wait for every in-flight async write of this file."""
        while state.pending_writes:
            ev = next(iter(state.pending_writes.values()))
            yield from thread.block(ev)

    def _extending_write(self, thread: Thread, state: FileState,
                         offset: int, nbytes: int,
                         data: Optional[bytes]) -> Generator:
        """Writes past EOF modify metadata and go through the kernel —
        unless optimised appends have pre-allocated the blocks."""
        if (self.optimized_appends and offset == state.size):
            if offset + nbytes > state.prealloc_end:
                chunk = max(_PREALLOC_CHUNK, nbytes)
                yield from self.kernel.sys_fallocate(
                    self.proc, thread, state.fd, offset, chunk)
                state.prealloc_end = offset + chunk
            # The blocks exist now; overwrite them from userspace.
            # UserLib's logical size grows; the filesystem size stays at
            # the fallocate boundary (zero padding, Section 5.1).
            if offset % SECTOR or nbytes % SECTOR:
                n = yield from self._partial_write(thread, state, offset,
                                                   nbytes, data)
            else:
                n = yield from self._overwrite(thread, state, offset,
                                               nbytes, data)
            state.size = max(state.size, offset + nbytes)
            return n
        if offset == state.size:
            yield from self.kernel.sys_append(self.proc, thread,
                                              state.fd, nbytes, data)
            state.size = state.inode.size
            return nbytes
        # Straddling write (overwrite + extend): kernel handles it whole.
        n = yield from self.kernel.sys_pwrite(self.proc, thread, state.fd,
                                              offset, nbytes, data)
        state.size = state.inode.size
        return n

    def _kernel_read(self, thread: Thread, state: FileState,
                     offset: int, nbytes: int) -> Generator:
        """Kernel-interface read (the kernel shims sector alignment)."""
        return (yield from self.kernel.sys_pread(
            self.proc, thread, state.fd, offset, nbytes))

    def _kernel_unaligned_write(self, thread: Thread, state: FileState,
                                offset: int, nbytes: int,
                                data: Optional[bytes]) -> Generator:
        """Kernel-interface write (the kernel RMWs sub-sector spans)."""
        return (yield from self.kernel.sys_pwrite(
            self.proc, thread, state.fd, offset, nbytes, data))

    def _partial_write(self, thread: Thread, state: FileState,
                       offset: int, nbytes: int,
                       data: Optional[bytes]) -> Generator:
        """Sub-sector write: serialised read-modify-write (Section 4.5.1)."""
        first = offset // SECTOR
        last = (offset + nbytes - 1) // SECTOR
        # Wait for any overlapping in-flight partial write, FIFO order.
        while True:
            blockers = [ev for (lo, hi), ev in state.partial_writes.items()
                        if lo <= last and first <= hi]
            if not blockers:
                break
            yield from thread.block(blockers[0])
        done = self.sim.event()
        state.partial_writes[(first, last)] = done
        try:
            aligned_off = first * SECTOR
            aligned_len = (last - first + 1) * SECTOR
            yield from thread.compute(self.params.userlib_submit_ns)
            read_c = yield from self._issue(thread, state, Opcode.READ,
                                            aligned_off, aligned_len, None)
            merged: Optional[bytes] = None
            if read_c is not None and read_c.data is not None:
                skip = offset - aligned_off
                old = read_c.data
                new = data if data is not None else bytes(nbytes)
                merged = old[:skip] + new + old[skip + nbytes:]
            yield from thread.compute(self.params.userlib_submit_ns
                                      + self.params.memcpy_ns(nbytes))
            write_c = yield from self._issue(thread, state, Opcode.WRITE,
                                             aligned_off, aligned_len,
                                             merged)
            if read_c is None or write_c is None:
                return (yield from self._kernel_unaligned_write(
                    thread, state, offset, nbytes, data))
            self.direct_writes += 1
            yield from thread.compute(self.params.userlib_complete_ns)
            return nbytes
        finally:
            del state.partial_writes[(first, last)]
            done.succeed()

    # -- submission & fault handling -----------------------------------------

    def _poll_guarded(self, thread: Thread, ctx: "_ThreadCtx",
                      cmd: Command, ev: Event) -> Generator:
        """Poll for the completion, timing out and aborting commands the
        device silently dropped (only armed when the fault plan can
        drop completions, so fault-free timing is untouched)."""
        if not self.device.injector.may_drop:
            return (yield from thread.poll(ev))
        while not ev.processed:
            deadline = self.sim.timeout(self.params.io_timeout_ns)
            yield from thread.poll(self.sim.any_of([ev, deadline]))
            if ev.processed:
                break
            self.io_timeouts += 1
            if self.device.abort(ctx.qp, cmd.cid):
                self.io_aborts += 1
        return ev.value

    def _issue(self, thread: Thread, state: FileState, opcode: Opcode,
               file_off: int, nbytes: int,
               data: Optional[bytes]) -> Generator:
        """Submit one VBA command, polling for completion.

        Returns the completion, or None after the kernel confirmed the
        file is no longer directly accessible (VBA of 0) or translation
        faults persisted past the retry budget.  Transient device
        errors are retried in place with bounded backoff and raise
        :class:`IOError_` (errno ``EIO``) once exhausted — the same
        contract the kernel path gives, so applications see one errno
        model regardless of path.
        """
        ctx = self._ctx(thread)
        tracer = self.kernel.tracer
        fault_attempts = 0
        error_retries = 0
        while True:
            cmd = Command(opcode, addr=state.vba + file_off,
                          nbytes=nbytes, addr_kind=AddressKind.VBA,
                          buffer_iova=ctx.buf.iova, data=data)
            # Open the wait span before ringing the doorbell and stamp
            # the command with it, so device-side phase spans parent
            # here (a retry opens a fresh span under the same op).
            token = tracer.begin("device", "direct-io", thread=thread)
            try:
                tracer.stamp(cmd, thread=thread)
                ev = self.device.submit(ctx.qp, cmd)
                completion = yield from self._poll_guarded(thread, ctx,
                                                           cmd, ev)
            finally:
                tracer.end(token)
            if completion.ok:
                return completion
            if completion.status is Status.TRANSLATION_FAULT:
                # Revoked (or raced a truncate): ask the kernel to
                # re-attach before giving up on the direct path.
                self.faults_handled += 1
                fault_attempts += 1
                vba = yield from self.kernel.sys_fmap(self.proc, thread,
                                                      state.fd)
                if vba == 0 or fault_attempts >= _MAX_FAULT_RETRIES:
                    self._fallback(state)
                    return None
                state.vba = vba
                continue
            if completion.status.retryable:
                error_retries += 1
                if error_retries > self.params.io_retry_limit:
                    self.io_errors += 1
                    raise IOError_(completion)
                self.io_retries += 1
                self.max_error_retries = max(self.max_error_retries,
                                             error_retries)
                backoff = self.params.retry_backoff_ns(error_retries)
                self.max_backoff_ns = max(self.max_backoff_ns, backoff)
                backoff_t0 = self.sim.now
                yield from thread.sleep(backoff)
                tracer.add_wait("retry_backoff",
                                self.sim.now - backoff_t0, thread=thread)
                continue
            self.io_errors += 1
            raise IOError_(completion)

    def _fallback(self, state: FileState) -> None:
        """Permanently drop this open to the kernel interface."""
        if not state.fallback:
            state.fallback = True
            state.vba = 0
            state.inode.kernel_openers += 1
            self.kernel_fallbacks += 1

    # -- sync -------------------------------------------------------------

    def fsync(self, thread: Thread, state: FileState) -> Generator:
        """Flush this process's queues, then kernel fsync (Table 3)."""
        tracer = self.kernel.tracer
        op = tracer.begin("op", "fsync", thread=thread)
        try:
            if state.direct:
                yield from self.drain_writes(thread, state)
                for _tid, ctx in sorted(self._ctxs.items()):
                    cmd = Command(Opcode.FLUSH, addr=0, nbytes=0)
                    token = tracer.begin("device", "direct-io",
                                         thread=thread)
                    try:
                        tracer.stamp(cmd, thread=thread)
                        ev = self.device.submit(ctx.qp, cmd)
                        yield from thread.poll(ev)
                    finally:
                        tracer.end(token)
            yield from self.kernel.sys_fsync(self.proc, thread, state.fd)
        finally:
            tracer.end(op)


class BypassDFile:
    """POSIX-looking handle over UserLib.  All methods are generators."""

    def __init__(self, lib: UserLib, state: FileState):
        self._lib = lib
        self.state = state

    @property
    def size(self) -> int:
        if self.state.prealloc_end:
            return self.state.size  # logical size excludes padding
        return max(self.state.size, self.state.inode.size)

    @property
    def using_direct_path(self) -> bool:
        return self.state.direct

    def pread(self, thread: Thread, offset: int,
              nbytes: int) -> Generator:
        return self._lib.pread(thread, self.state, offset, nbytes)

    def pwrite(self, thread: Thread, offset: int, nbytes: int,
               data: Optional[bytes] = None) -> Generator:
        return self._lib.pwrite(thread, self.state, offset, nbytes, data)

    def read(self, thread: Thread, nbytes: int) -> Generator:
        n, data = yield from self._lib.pread(thread, self.state,
                                             self.state.offset, nbytes)
        self.state.offset += n
        return n, data

    def write(self, thread: Thread, nbytes: int,
              data: Optional[bytes] = None) -> Generator:
        n = yield from self._lib.pwrite(thread, self.state,
                                        self.state.offset, nbytes, data)
        self.state.offset += n
        return n

    def append(self, thread: Thread, nbytes: int,
               data: Optional[bytes] = None) -> Generator:
        offset = self.size
        yield from self._lib.pwrite(thread, self.state, offset, nbytes,
                                    data)
        return offset

    def fsync(self, thread: Thread) -> Generator:
        return self._lib.fsync(thread, self.state)

    def close(self, thread: Thread) -> Generator:
        return self._lib.close(thread, self.state)
