"""UserLib fault handling beyond plain revocation: truncate races,
growth re-attachment, re-fmap after transient faults."""

import pytest

from repro import GiB, Machine


@pytest.fixture
def m():
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)


def setup(m, size=1 << 20):
    proc = m.spawn_process()
    lib = m.userlib(proc)
    t = proc.new_thread()

    def body():
        f = yield from lib.open(t, "/x", write=True, create=True)
        if size:
            yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0,
                                              size)
        return f

    return proc, lib, t, m.run_process(body())


def test_read_of_truncated_region_clamped(m):
    """After ftruncate, UserLib's size bookkeeping (plus the detached
    FTEs behind it) keeps reads inside the new size."""
    proc, lib, t, f = setup(m)

    def body():
        yield from m.kernel.sys_ftruncate(proc, t, f.state.fd, 4096)
        f.state.size = 4096  # UserLib learns via the same process
        n, _ = yield from f.pread(t, 0, 65536)
        return n

    assert m.run_process(body()) == 4096
    assert f.using_direct_path


def test_stale_read_beyond_truncation_faults_to_fallback(m):
    """A racy UserLib that did NOT update its size gets a translation
    fault from the IOMMU — never stale data."""
    proc, lib, t, f = setup(m)

    def body():
        yield from m.kernel.sys_ftruncate(proc, t, f.state.fd, 4096)
        # Lie about the size to force a read of detached FTEs.
        f.state.size = 1 << 20
        n, data = yield from f.pread(t, 512 * 1024, 4096)
        return n, data

    n, data = m.run_process(body())
    # The fault was handled; the kernel served the (clamped) truth.
    assert lib.faults_handled >= 1
    assert n == 0


def test_refmap_after_growth_revocation(m):
    """When a file outgrows its VA region the kernel re-homes it; the
    very next I/O transparently re-fmaps into a larger region."""
    proc, lib, t, f = setup(m, size=4096)
    headroom_bytes = (1 + 8) * (2 << 20)  # initial leaf + headroom

    def body():
        old_vba = f.state.vba
        # Grow far beyond the reserved region.
        yield from m.kernel.sys_fallocate(proc, t, f.state.fd, 0,
                                          headroom_bytes + (8 << 20))
        n, _ = yield from f.pread(t, headroom_bytes + (4 << 20), 4096)
        return old_vba, f.state.vba, n

    old_vba, new_vba, n = m.run_process(body())
    assert n == 4096
    assert new_vba != old_vba        # re-homed into a larger region
    assert f.using_direct_path       # still direct, no fallback
    assert lib.kernel_fallbacks == 0


def test_fault_counter_and_single_refmap(m):
    proc, lib, t, f = setup(m)
    other = m.spawn_process()
    t2 = other.new_thread()

    def open_close_kernel():
        from repro.kernel.process import O_RDWR
        fd = yield from m.kernel.sys_open(other, t2, "/x", O_RDWR)
        yield from m.kernel.sys_close(other, t2, fd)

    m.run_process(open_close_kernel())  # revokes, then quiesces

    def body():
        n, _ = yield from f.pread(t, 0, 4096)
        return n

    assert m.run_process(body()) == 4096
    # One fault, one re-fmap; since the inode quiesced the re-fmap
    # SUCCEEDS and the file stays on the direct path.
    assert lib.faults_handled == 1
    assert f.using_direct_path
    assert lib.kernel_fallbacks == 0


def test_partial_write_during_fallback_goes_kernel(m):
    proc, lib, t, f = setup(m)
    other = m.spawn_process()
    t2 = other.new_thread()

    def kernel_open():
        from repro.kernel.process import O_RDWR
        yield from m.kernel.sys_open(other, t2, "/x", O_RDWR)

    m.run_process(kernel_open())  # revoke, opener stays

    def body():
        yield from f.pwrite(t, 100, 10, b"0123456789")
        n, data = yield from f.pread(t, 96, 20)
        return data

    data = m.run_process(body())
    assert data[4:14] == b"0123456789"
    assert not f.using_direct_path
