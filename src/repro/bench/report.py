"""Result tables: the text the benchmark harness prints.

Each experiment returns a :class:`ResultTable` whose rows mirror the
rows/series of the corresponding table or figure in the paper, so the
harness output can be compared against the publication side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: str = ""
    # Machine health/fault counters attached by the harness (e.g. the
    # device's translation_faults, injected-fault totals); rendered as
    # a footer so fault-injection runs show what the run absorbed.
    counters: Dict[str, int] = field(default_factory=dict)

    def attach_counters(self, counters: Dict[str, int],
                        nonzero_only: bool = True) -> None:
        for key, value in counters.items():
            if nonzero_only and not value:
                continue
            self.counters[key] = self.counters.get(key, 0) + int(value)

    def attach_metrics(self, registry,
                       nonzero_only: bool = True) -> None:
        """Attach a :class:`repro.obs.metrics.MetricsRegistry`'s
        counters to the footer (same rendering as attach_counters)."""
        self.attach_counters(registry.counters_snapshot(),
                             nonzero_only=nonzero_only)

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (sorted-key JSON friendly)."""
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
            "counters": dict(sorted(self.counters.items())),
        }

    def add(self, *row: Any) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(row)

    def column(self, name: str) -> List[Any]:
        idx = list(self.headers).index(name)
        return [row[idx] for row in self.rows]

    def by(self, key_column: str) -> Dict[Any, Sequence[Any]]:
        idx = list(self.headers).index(key_column)
        return {row[idx]: row for row in self.rows}

    def _fmt(self, value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 100:
                return f"{value:,.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        cells = [[self._fmt(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(row):
            return "  ".join(c.rjust(w) for c, w in zip(row, widths))

        out = [self.title, "=" * len(self.title),
               line(self.headers), line(["-" * w for w in widths])]
        out.extend(line(row) for row in cells)
        if self.notes:
            out.append("")
            out.append(self.notes)
        if self.counters:
            out.append("")
            out.append("counters: " + "  ".join(
                f"{k}={v}" for k, v in self.counters.items()))
        return "\n".join(out)

    def show(self) -> None:
        print()
        print(self.render())
        print()
