"""A second power failure *during* journal replay.

Real jbd2 recovery can itself be interrupted; what makes it safe is
that replay only mutates the about-to-be-mounted image, never the log.
Here: ``recover_after_crash(crash_after_records=k)`` raises a clean
:class:`PowerFailure` tagged with the replay position, the crash image
is untouched, and retrying the recovery — after an interruption at
*any* record — converges to exactly the uninterrupted result."""

import pytest

from repro import GiB, Machine
from repro.faults import FaultPlan, PowerFailure
from repro.kernel.process import O_CREAT, O_RDWR


def crashed_machine(nfiles=8):
    m = Machine(faults=FaultPlan().crash_at(2_000_000),
                capacity_bytes=1 * GiB, memory_bytes=128 << 20)
    proc = m.spawn_process("meta")
    t = proc.new_thread()

    def body():
        for i in range(nfiles):
            fd = yield from m.kernel.sys_open(proc, t, f"/f{i}",
                                              O_RDWR | O_CREAT)
            yield from m.kernel.sys_fallocate(proc, t, fd, 0, 2 * 4096)
            yield from m.kernel.sys_fsync(proc, t, fd)
            yield from m.kernel.sys_close(proc, t, fd)

    with pytest.raises(PowerFailure):
        m.run_process(t.run(body()))
    return m


def fs_snapshot(fs, nfiles=8):
    return [(f"/f{i}", fs.exists(f"/f{i}"),
             fs.lookup(f"/f{i}").mapped_blocks
             if fs.exists(f"/f{i}") else 0)
            for i in range(nfiles)]


def test_second_power_failure_mid_replay_surfaces_cleanly():
    m = crashed_machine()
    records = m.fs.crash_image()
    assert len(records) >= 4, "crash point too early for this test"
    with pytest.raises(PowerFailure) as exc_info:
        m.recover_after_crash(crash_after_records=len(records) // 2)
    assert exc_info.value.during.startswith("journal replay")
    assert "journal replay" in str(exc_info.value)


def test_machine_stays_recoverable_after_interrupted_recovery():
    m = crashed_machine()
    baseline = fs_snapshot(m.recover_after_crash())
    with pytest.raises(PowerFailure):
        m.recover_after_crash(crash_after_records=1)
    # the journal image was read-only during the failed replay
    assert fs_snapshot(m.recover_after_crash()) == baseline


def test_every_interruption_point_is_recoverable():
    m = crashed_machine()
    records = m.fs.crash_image()
    baseline = fs_snapshot(m.recover_after_crash())
    for k in range(len(records)):
        with pytest.raises(PowerFailure) as exc_info:
            m.recover_after_crash(crash_after_records=k)
        assert f"record {k} of {len(records)}" in str(exc_info.value)
        retry = m.recover_after_crash()   # fsck runs inside
        assert fs_snapshot(retry) == baseline


def test_interruption_past_the_last_record_is_a_full_recovery():
    m = crashed_machine()
    records = m.fs.crash_image()
    recovered = m.recover_after_crash(
        crash_after_records=len(records))
    assert fs_snapshot(recovered) == fs_snapshot(m.recover_after_crash())
