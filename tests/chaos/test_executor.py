"""The scenario executor: determinism, crash/recover, worker payloads."""

import pytest

from repro.chaos import generate, run_scenario, scenario_seed
from repro.chaos.executor import run_payload


def test_same_scenario_twice_is_byte_identical():
    s = generate(scenario_seed(42, 3))
    r1, r2 = run_scenario(s), run_scenario(s)
    assert r1.fingerprint() == r2.fingerprint()
    assert r1.to_dict() == r2.to_dict()


def test_generated_batch_runs_clean():
    # No canary, no model bugs: every oracle must stay silent, on
    # clean runs and crash/recover runs alike.
    crashes = 0
    for i in range(15):
        s = generate(scenario_seed(42, i))
        result = run_scenario(s)
        assert result.ok, (i, [v.to_dict() for v in result.violations])
        crashes += result.crashed
    assert crashes > 0, "batch never crashed: crash coverage lost"


def test_crash_scenario_recovers_and_reports_it():
    s = next(generate(scenario_seed(42, i)) for i in range(50)
             if generate(scenario_seed(42, i)).crash_at_ns is not None
             and generate(scenario_seed(42, i)).recover)
    result = run_scenario(s)
    assert result.crashed and result.recovered
    assert result.end_ns == s.crash_at_ns
    assert result.ok


def test_result_dict_shape():
    s = generate(scenario_seed(7, 0))
    d = run_scenario(s).to_dict()
    assert d["scenario"] == s.to_dict()
    assert set(d) >= {"scenario", "end_ns", "crashed", "recovered",
                      "violations", "stats", "tenants"}
    assert len(d["tenants"]) == len(s.tenants)
    for ledger in d["tenants"]:
        assert ledger["finished"] or ledger["aborted"] or d["crashed"]


def test_run_payload_matches_in_process_run():
    s = generate(scenario_seed(42, 3))
    d = run_payload((s.to_json(), ()))
    assert d["fingerprint"] == run_scenario(s).fingerprint()
    assert d["violations"] == []


def test_unknown_canary_rejected():
    s = generate(scenario_seed(7, 0))
    with pytest.raises(ValueError, match="unknown canary"):
        run_scenario(s, canaries=("no-such-canary",))
