"""Workloads: fio, YCSB, WiredTiger, BPF-KV, KVell, and a real KV store."""

from .fio import FioJob, FioResult, run_fio
from .ycsb import (
    WORKLOAD_MIXES,
    LatestGenerator,
    YCSBWorkload,
    ZipfianGenerator,
)
from .wiredtiger import (
    BTreeGeometry,
    WiredTigerModel,
    WTResult,
    run_wiredtiger_ycsb,
)
from .bpfkv import BPFKVGeometry, BPFKVResult, run_bpfkv
from .kvell import KVellConfig, KVellResult, run_kvell
from .kvstore import KVError, KVStore
from .lsm import BloomFilter, LSMStore, SSTableInfo
from .workload_utils import StartGate, materialize_file

__all__ = [
    "FioJob",
    "FioResult",
    "run_fio",
    "WORKLOAD_MIXES",
    "LatestGenerator",
    "YCSBWorkload",
    "ZipfianGenerator",
    "BTreeGeometry",
    "WiredTigerModel",
    "WTResult",
    "run_wiredtiger_ycsb",
    "BPFKVGeometry",
    "BPFKVResult",
    "run_bpfkv",
    "KVellConfig",
    "KVellResult",
    "run_kvell",
    "KVError",
    "KVStore",
    "BloomFilter",
    "LSMStore",
    "SSTableInfo",
    "StartGate",
    "materialize_file",
]
