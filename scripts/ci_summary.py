#!/usr/bin/env python3
"""Merge sharded CI results into one GitHub Actions job summary.

    python scripts/ci_summary.py results/**/*.xml \
        --timings bench-timings.json >> "$GITHUB_STEP_SUMMARY"

Reads the junit XML files the shard jobs uploaded (one per shard; the
label is derived from the file name), renders a per-shard pass/fail
table, and appends the slowest experiments — from the runner's
``bench-timings.json`` when available, otherwise from the junit test
durations.  Plain GitHub-flavoured markdown on stdout; exits 0 even
for red shards (the shard jobs themselves carry the failure status —
this tool only reports).
"""

from __future__ import annotations

import argparse
import json
import sys
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.timings import load_timings, slowest  # noqa: E402


def parse_junit(path: Path) -> Dict[str, object]:
    """Totals + per-test durations from one junit XML file."""
    root = ET.parse(path).getroot()
    suites = root.iter("testsuite") if root.tag == "testsuites" else [root]
    totals = {"tests": 0, "failures": 0, "errors": 0, "skipped": 0,
              "time": 0.0}
    cases: List[Dict[str, object]] = []
    for suite in suites:
        for key in ("tests", "failures", "errors", "skipped"):
            totals[key] += int(suite.get(key, 0) or 0)
        totals["time"] += float(suite.get("time", 0.0) or 0.0)
        for case in suite.iter("testcase"):
            cases.append({
                "name": f"{case.get('classname', '')}::"
                        f"{case.get('name', '')}",
                "time": float(case.get("time", 0.0) or 0.0),
                "failed": case.find("failure") is not None
                or case.find("error") is not None,
            })
    return {"label": path.stem, "totals": totals, "cases": cases}


def shard_table(shards: List[Dict[str, object]]) -> List[str]:
    lines = ["| shard | tests | failed | errors | skipped | time (s) "
             "| status |",
             "|---|---:|---:|---:|---:|---:|---|"]
    for s in shards:
        t = s["totals"]
        red = t["failures"] + t["errors"]
        status = "✅ pass" if red == 0 else "❌ fail"
        lines.append(
            f"| {s['label']} | {t['tests']} | {t['failures']} "
            f"| {t['errors']} | {t['skipped']} | {t['time']:.1f} "
            f"| {status} |")
    return lines


def slowest_from_timings(path: Path, n: int) -> List[str]:
    data = load_timings(path)
    lines = [f"| experiment | wall (s) | sim time (ms) | machines "
             "| cached |",
             "|---|---:|---:|---:|---|"]
    for e in slowest(data, n):
        lines.append(
            f"| {e.get('experiment')} | {e.get('wall_s', 0.0):.2f} "
            f"| {float(e.get('sim_time_ns', 0)) / 1e6:.1f} "
            f"| {e.get('machines', 0)} "
            f"| {'yes' if e.get('cached') else 'no'} |")
    return lines


def slowest_from_junit(shards: List[Dict[str, object]],
                       n: int) -> List[str]:
    cases: List[Dict[str, object]] = []
    for s in shards:
        for c in s["cases"]:
            cases.append({**c, "shard": s["label"]})
    cases.sort(key=lambda c: (-float(c["time"]), str(c["name"])))
    lines = ["| test | shard | time (s) |", "|---|---|---:|"]
    for c in cases[:n]:
        lines.append(f"| `{c['name']}` | {c['shard']} "
                     f"| {float(c['time']):.1f} |")
    return lines


def engine_bench_section(path: Path) -> List[str]:
    """Render the ``benchmarks/bench_engine.py --json`` artifact: hot-path
    ops/sec for the overhauled engine vs the frozen reference."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"_could not read engine bench {path}: {exc}_"]
    lines = ["### Engine hot-path ops/sec", "",
             "| loop | ops | new (ops/s) | reference (ops/s) "
             "| speedup |",
             "|---|---:|---:|---:|---:|"]
    for b in data.get("benchmarks", []):
        lines.append(
            f"| {b.get('name')} | {b.get('ops', 0):,} "
            f"| {float(b.get('new_ops_per_sec', 0.0)):,.0f} "
            f"| {float(b.get('ref_ops_per_sec', 0.0)):,.0f} "
            f"| {float(b.get('speedup', 0.0)):.2f}x |")
    return lines


def exemplars_section(path: Path, n: int = 3) -> List[str]:
    """Render the top tail exemplars from a ``*.exemplars.json``
    artifact (per-tenant dumps from
    :func:`repro.obs.exemplar.exemplars_json`)."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"_could not read exemplars {path}: {exc}_"]
    merged = [ex for tid in sorted(data) for ex in data[tid]]
    merged.sort(key=lambda ex: (-int(ex.get("duration_ns", 0)),
                                int(ex.get("start_ns", 0)),
                                int(ex.get("tid", 0))))
    lines = [f"### Top {n} tail exemplars", ""]
    if not merged:
        lines.append("_no ops crossed the tail threshold_")
        return lines
    lines += ["| op | tenant | duration (ns) | threshold (ns) "
              "| wait (ns) |",
              "|---|---:|---:|---:|---:|"]
    for ex in merged[:n]:
        by_kind = (ex.get("waterfall") or {}).get("by_kind", {})
        wait = sum(v for k, v in by_kind.items() if k != "service")
        lines.append(
            f"| `{ex.get('op')}` | {ex.get('tid')} "
            f"| {int(ex.get('duration_ns', 0)):,} "
            f"| {int(ex.get('threshold_ns', 0)):,} | {wait:,} |")
    return lines


def hostprof_section(path: Path) -> List[str]:
    """Render the per-layer host-profiler table from a
    ``*.hostprof.json`` artifact
    (:meth:`repro.obs.hostprof.HostProfile.to_json`)."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"_could not read host profile {path}: {exc}_"]
    layers = data.get("layers", {})
    total = max(1, int(data.get("total_events", 0)))
    lines = ["### Host profiler (self-time per layer)", "",
             f"- profile events: {total:,}",
             f"- wall: {float(data.get('wall_s', 0.0)):.3f}s", "",
             "| layer | events | share |", "|---|---:|---:|"]
    for layer, events in sorted(layers.items(),
                                key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"| {layer} | {int(events):,} "
                     f"| {int(events) / total:.1%} |")
    return lines


def sweep_section(path: Path) -> List[str]:
    """Render the sweep compare report (``repro.sweep gate --report``)
    as the grid heat table plus per-layer blame for regressed cells —
    the dashboard half of the sweep gate."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"_could not read sweep report {path}: {exc}_"]
    from repro.sweep.compare import render_markdown
    return render_markdown(data).rstrip("\n").split("\n")


def lint_section(path: Path) -> List[str]:
    """Render simlint counts (``simlint --json`` output) so the
    baseline burn-down trend is visible per run."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"_could not read lint report {path}: {exc}_"]
    violations = data.get("violations", [])
    by_rule: Dict[str, int] = {}
    for v in violations:
        by_rule[v.get("rule", "?")] = by_rule.get(v.get("rule", "?"), 0) + 1
    lines = ["### simlint", "",
             f"- files checked: {data.get('files_checked', 0)}",
             f"- new violations: {len(violations)}",
             f"- baselined (burn-down backlog): "
             f"{data.get('baselined', 0)}"]
    if by_rule:
        lines += ["", "| rule | new violations |", "|---|---:|"]
        for rule in sorted(by_rule):
            lines.append(f"| {rule} | {by_rule[rule]} |")
    return lines


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="ci_summary", description=__doc__)
    ap.add_argument("junit", nargs="+", type=Path,
                    help="junit XML files, one per shard")
    ap.add_argument("--timings", type=Path, default=None,
                    help="bench-timings.json for the slowest-N table")
    ap.add_argument("--lint", type=Path, default=None,
                    help="simlint --json report for the lint/baseline "
                         "counts section")
    ap.add_argument("--engine-bench", type=Path, default=None,
                    help="bench_engine.py JSON artifact for the "
                         "hot-path ops/sec section")
    ap.add_argument("--exemplars", type=Path, default=None,
                    help="*.exemplars.json artifact for the top tail "
                         "exemplars section")
    ap.add_argument("--hostprof", type=Path, default=None,
                    help="*.hostprof.json artifact for the per-layer "
                         "host profiler section")
    ap.add_argument("--sweep", type=Path, default=None,
                    help="sweep compare report (repro.sweep gate "
                         "--report) for the grid heat table and "
                         "per-layer blame section")
    ap.add_argument("--title", default="Sharded CI results")
    ap.add_argument("--slowest", type=int, default=10)
    args = ap.parse_args(argv)

    shards = []
    for path in sorted(args.junit):
        if not path.exists():
            print(f"warning: missing junit file {path}", file=sys.stderr)
            continue
        shards.append(parse_junit(path))
    out = [f"## {args.title}", ""]
    if shards:
        out.extend(shard_table(shards))
    else:
        out.append("_no junit results found_")
    out.append("")
    out.append(f"### Slowest {args.slowest} experiments")
    out.append("")
    if args.timings is not None and args.timings.exists():
        out.extend(slowest_from_timings(args.timings, args.slowest))
    elif shards:
        out.extend(slowest_from_junit(shards, args.slowest))
    else:
        out.append("_no timing data_")
    if args.sweep is not None:
        out.append("")
        out.extend(sweep_section(args.sweep))
    if args.engine_bench is not None:
        out.append("")
        out.extend(engine_bench_section(args.engine_bench))
    if args.exemplars is not None:
        out.append("")
        out.extend(exemplars_section(args.exemplars))
    if args.hostprof is not None:
        out.append("")
        out.extend(hostprof_section(args.hostprof))
    if args.lint is not None:
        out.append("")
        out.extend(lint_section(args.lint))
    print("\n".join(out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
