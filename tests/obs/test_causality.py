"""Causality over span trees: device work must be provably nested
under the host operation that caused it, and retry loops must leave
exactly as many device spans as the fault counters claim."""

from repro import GiB, Machine
from repro.baselines.registry import make_engine
from repro.faults import FaultPlan
from repro.obs.export import ancestor_chain, span_index


def _machine(faults=None):
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                   capture_data=False, trace=True, faults=faults)


def _run_reads(m, engine_name, ops=4):
    """Materialize a file, then read; only the reads are in-window."""
    from repro.apps.workload_utils import materialize_file

    proc = m.spawn_process("cause")
    engine = make_engine(m, proc, engine_name)
    t = proc.new_thread("cause-0")

    def body():
        yield from materialize_file(m, proc, engine, "/f", 1 << 20)
        f = yield from engine.open(t, "/f")
        m.tracer.clear()  # setup wrote only metadata; reads start clean
        for i in range(ops):
            yield from f.pread(t, i * 4096, 4096)

    m.run_process(body())
    return m.tracer


def _by_category(spans):
    out = {}
    for s in spans:
        out.setdefault(s.category, []).append(s)
    return out


class TestNesting:
    def test_sync_device_within_driver_within_syscall(self):
        tracer = _run_reads(_machine(), "sync", ops=4)
        index = span_index(tracer.spans)
        cats = _by_category(tracer.spans)
        assert len(cats["nvme"]) > 0
        for nvme_span in cats["nvme"]:
            chain = ancestor_chain(nvme_span, index)
            chain_cats = [s.category for s in chain]
            assert "device" in chain_cats
            assert "syscall" in chain_cats
            # Time containment, innermost out: nvme ⊂ device ⊂ syscall.
            for outer in chain:
                assert outer.start_ns <= nvme_span.start_ns
                assert nvme_span.end_ns <= outer.end_ns
        # All spans of one read share its trace id.
        for spans in tracer.traces().values():
            roots = [s for s in spans if s.is_root]
            assert len(roots) == 1
            assert roots[0].category == "syscall"

    def test_bypassd_device_within_op_no_syscall(self):
        ops = 4
        tracer = _run_reads(_machine(), "bypassd", ops=ops)
        cats = _by_category(tracer.spans)
        assert "syscall" not in cats          # no kernel on the data path
        assert len(cats["op"]) == ops
        assert len(cats["device"]) == ops
        index = span_index(tracer.spans)
        for nvme_span in cats["nvme"]:
            chain_cats = [s.category for s in
                          ancestor_chain(nvme_span, index)]
            assert "device" in chain_cats
            assert chain_cats[-1] == "op"     # root of the tree
        assert len(tracer.traces()) == ops    # one tree per pread


class TestRetrySpans:
    """Under an injected media error the span tree must show the retry:
    N+1 device attempts under one operation, matching the Stats and
    metrics counters exactly."""

    def test_sync_retry_produces_two_device_spans(self):
        m = _machine(faults=FaultPlan().media_read_errors(nth=1, count=1))
        tracer = _run_reads(m, "sync", ops=1)
        cats = _by_category(tracer.spans)
        stats = m.stats()
        assert stats.driver_retries == 1
        assert stats.injected["media_read_error"] == 1
        # One syscall span, two device attempts beneath it.
        assert len(cats["syscall"]) == 1
        assert len(cats["device"]) == 1 + stats.driver_retries
        index = span_index(tracer.spans)
        syscall_id = cats["syscall"][0].span_id
        for dev in cats["device"]:
            chain_ids = [s.span_id for s in ancestor_chain(dev, index)]
            assert syscall_id in chain_ids
        # The injector recorded the fault as a span too...
        assert len(cats["fault"]) == 1
        # ...and mirrored it into the machine's metrics registry.
        counters = m.metrics.counters_snapshot()
        assert counters["faults.media_read_error"] == 1

    def test_bypassd_retry_produces_two_device_spans(self):
        m = _machine(faults=FaultPlan().media_read_errors(nth=1, count=1))
        tracer = _run_reads(m, "bypassd", ops=1)
        cats = _by_category(tracer.spans)
        stats = m.stats()
        assert stats.userlib_io_retries == 1
        assert len(cats["op"]) == 1
        assert len(cats["device"]) == 1 + stats.userlib_io_retries
        op_id = cats["op"][0].span_id
        index = span_index(tracer.spans)
        for dev in cats["device"]:
            chain_ids = [s.span_id for s in ancestor_chain(dev, index)]
            assert op_id in chain_ids
        assert m.metrics.counters_snapshot()[
            "faults.media_read_error"] == 1

    def test_stats_mirror_into_registry(self):
        m = _machine(faults=FaultPlan().media_read_errors(nth=1, count=1))
        _run_reads(m, "sync", ops=1)
        registry = m.metrics_registry()
        counters = registry.counters_snapshot()
        summary = m.stats().summary()
        for key, value in summary.items():
            assert counters[f"machine.{key}"] == value
        assert counters["machine.driver_retries"] == 1
        assert counters["machine.injected_media_read_error"] == 1
