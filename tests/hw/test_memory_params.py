"""Unit tests for physical memory, DMA buffers and the parameter block."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.hw.memory import DMABuffer, OutOfMemoryError, PhysicalMemory
from repro.hw.params import DEFAULT_PARAMS, HardwareParams
from repro.hw.pcie import PCIeLink


class TestPhysicalMemory:
    def test_alloc_free_frames(self):
        mem = PhysicalMemory(1 << 20)  # 256 frames
        f1 = mem.alloc_frame()
        f2 = mem.alloc_frame()
        assert f1 != f2
        assert mem.allocated_frames == 2
        mem.free_frame(f1)
        assert mem.allocated_frames == 1
        assert mem.free_frames == 255

    def test_frames_recycled(self):
        mem = PhysicalMemory(1 << 20)
        f = mem.alloc_frame()
        mem.free_frame(f)
        assert mem.alloc_frame() == f

    def test_exhaustion(self):
        mem = PhysicalMemory(4096 * 4)
        mem.alloc_frames(4)
        with pytest.raises(OutOfMemoryError):
            mem.alloc_frame()

    def test_bogus_free_rejected(self):
        mem = PhysicalMemory(1 << 20)
        with pytest.raises(ValueError):
            mem.free_frame(12345)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(100)


class TestDMABuffers:
    def test_alloc_assigns_unique_iovas(self):
        mem = PhysicalMemory(1 << 22)
        a = mem.alloc_dma_buffer(8192, pasid=1)
        b = mem.alloc_dma_buffer(8192, pasid=2)
        assert a.iova != b.iova
        assert a.pages == 2
        assert mem.dma_buffer_count == 2

    def test_size_rounded_to_pages(self):
        mem = PhysicalMemory(1 << 22)
        buf = mem.alloc_dma_buffer(100, pasid=1)
        assert buf.size == 4096

    def test_contains(self):
        mem = PhysicalMemory(1 << 22)
        buf = mem.alloc_dma_buffer(8192, pasid=1)
        assert buf.contains(buf.iova, 8192)
        assert buf.contains(buf.iova + 4096, 4096)
        assert not buf.contains(buf.iova + 4096, 8192)

    def test_find_by_iova(self):
        mem = PhysicalMemory(1 << 22)
        buf = mem.alloc_dma_buffer(8192, pasid=1)
        assert mem.find_dma_buffer(buf.iova + 5000) is buf
        assert mem.find_dma_buffer(buf.iova - 1) is None

    def test_free_releases_frames(self):
        mem = PhysicalMemory(1 << 22)
        before = mem.allocated_frames
        buf = mem.alloc_dma_buffer(16384, pasid=1)
        mem.free_dma_buffer(buf)
        assert mem.allocated_frames == before
        assert not buf.pinned
        with pytest.raises(ValueError):
            mem.free_dma_buffer(buf)

    def test_unaligned_iova_rejected(self):
        with pytest.raises(ValueError):
            DMABuffer(iova=100, size=4096, frames=[0], pasid=1)


class TestHardwareParams:
    def test_table1_total(self):
        """The kernel stack constants must sum to Table 1's software
        overhead: 7850 - 4020 = 3830 ns."""
        p = DEFAULT_PARAMS
        assert p.kernel_read_stack_ns() == 3830

    def test_device_4k_read_near_table1(self):
        assert abs(DEFAULT_PARAMS.device_read_ns(4096) - 4020) <= 10

    def test_vba_translation_minimum_550(self):
        p = DEFAULT_PARAMS
        assert (p.pcie_round_trip_ns + p.ats_processing_ns
                + p.full_pagewalk_ns()) == 550

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_PARAMS.cpu_cores = 1

    def test_replace_creates_variant(self):
        p = DEFAULT_PARAMS.replace(pcie_round_trip_ns=145)
        assert p.pcie_round_trip_ns == 145
        assert DEFAULT_PARAMS.pcie_round_trip_ns == 345

    @given(st.integers(min_value=0, max_value=1 << 24))
    def test_memcpy_monotone(self, nbytes):
        assert DEFAULT_PARAMS.memcpy_ns(nbytes) <= \
            DEFAULT_PARAMS.memcpy_ns(nbytes + 4096)

    def test_negative_copy_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PARAMS.memcpy_ns(-1)


class TestPCIeLink:
    def test_round_trip_counts(self):
        link = PCIeLink(DEFAULT_PARAMS)
        assert link.round_trip() == 345
        assert link.round_trips == 1
        assert link.doorbell_ns() == DEFAULT_PARAMS.doorbell_ns
        assert link.posted_writes == 1

    def test_one_way_is_half(self):
        link = PCIeLink(DEFAULT_PARAMS)
        assert link.one_way_ns == 172
