#!/usr/bin/env python3
"""Export observability artifacts for CI upload.

Default mode runs the README quickstart workload on a monitored,
traced machine and writes three files into ``--out`` (default
``artifacts/``):

- ``quickstart.trace.json`` — Chrome trace with Perfetto counter
  tracks for every telemetry gauge and submission->completion flow
  arrows (load at https://ui.perfetto.dev),
- ``quickstart.stacks.txt`` — collapsed stacks for flamegraph.pl
  or speedscope,
- ``quickstart.telemetry.json`` — the telemetry dump (gauge series,
  summaries, SLO state),
- ``quickstart.waterfalls.json`` / ``.txt`` — the per-op latency
  waterfalls (exact wait/service decomposition of every op),
- ``quickstart.exemplars.json`` — tail exemplars: full span trees
  retained for the slowest ops per tenant,
- ``quickstart.hostprof.json`` / ``quickstart.hostprof.stacks.txt``
  — the deterministic host profile of the run (self-time per
  architecture layer, collapsed host stacks).

``--bench`` mode instead runs the full experiment matrix through
:mod:`repro.bench.runner` (honouring ``--jobs``/``--monitor``) and
bundles every result for artifact upload:

- ``bench/report.txt`` — the merged paper-figure report, byte
  identical to a serial ``python -m repro.bench all`` run,
- ``bench/<experiment>.json`` — each experiment's machine-readable
  payload (ResultTable rows/counters, telemetry counts, timing),
- ``bench/bench-timings.json`` — per-experiment wall/sim-time records
  (the file scripts/ci_shard.py balances shards with).

Everything is deterministic, so two CI runs of the same commit upload
byte-identical artifacts (timing fields aside).
"""

from __future__ import annotations

import argparse
import io
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import GiB, Machine  # noqa: E402


def quickstart_machine() -> Machine:
    """The README quickstart workload, traced and monitored."""
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                trace=True, monitor=True)
    proc = m.spawn_process("app")
    lib = m.userlib(proc)
    t = proc.new_thread("app-0")

    def body():
        f = yield from lib.open(t, "/data", write=True, create=True)
        yield from f.append(t, 8192, b"x" * 8192)
        for i in range(4):
            yield from f.pread(t, (i * 2048) % 8192, 4096)
        yield from f.pwrite(t, 0, 4096)
        yield from f.fsync(t)
        yield from f.close(t)

    m.run_process(body())
    return m


def export_quickstart(out: Path) -> int:
    from repro.obs.attribution import (render_waterfalls,
                                       waterfalls_json)
    from repro.obs.exemplar import (ExemplarConfig, capture_exemplars,
                                    exemplars_json)
    from repro.obs.hostprof import profile_call

    out.mkdir(parents=True, exist_ok=True)
    m, profile = profile_call(quickstart_machine)
    trace = out / "quickstart.trace.json"
    stacks = out / "quickstart.stacks.txt"
    telemetry = out / "quickstart.telemetry.json"
    m.write_chrome_trace(trace, flows=True)
    m.write_flamegraph(stacks)
    m.write_telemetry(telemetry)

    waterfalls = out / "quickstart.waterfalls.json"
    waterfalls.write_text(waterfalls_json(m.tracer) + "\n",
                          encoding="utf-8")
    waterfalls_txt = out / "quickstart.waterfalls.txt"
    waterfalls_txt.write_text(render_waterfalls(m.tracer),
                              encoding="utf-8")

    # The quickstart is short, so warm up fast and keep a small window
    # — enough for the CI summary's "top tail exemplars" section.
    exemplars = out / "quickstart.exemplars.json"
    per_tenant = capture_exemplars(
        m.tracer, ExemplarConfig(percentile=90.0, capacity=3, warmup=4))
    exemplars.write_text(exemplars_json(per_tenant) + "\n",
                         encoding="utf-8")

    hostprof = out / "quickstart.hostprof.json"
    hostprof.write_text(profile.to_json() + "\n", encoding="utf-8")
    hostprof_stacks = out / "quickstart.hostprof.stacks.txt"
    hostprof_stacks.write_text(profile.collapsed(), encoding="utf-8")

    for path in (trace, stacks, telemetry, waterfalls, waterfalls_txt,
                 exemplars, hostprof, hostprof_stacks):
        print(f"wrote {path} ({path.stat().st_size} bytes)")
    return 0


def export_bench(out: Path, jobs: str, monitor: bool,
                 experiments=None) -> int:
    from repro.bench.runner import registry_names, run_experiments

    bench = out / "bench"
    bench.mkdir(parents=True, exist_ok=True)
    names = list(experiments) if experiments else registry_names()
    merged = io.StringIO()
    report = run_experiments(
        names, jobs=jobs, monitor=monitor,
        timings_path=bench / "bench-timings.json",
        out=merged, err=sys.stderr)
    (bench / "report.txt").write_text(merged.getvalue(),
                                      encoding="utf-8")
    for r in report.results:
        path = bench / f"{r.experiment}.json"
        path.write_text(json.dumps(r.payload, indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
    written = sorted(bench.iterdir())
    for path in written:
        print(f"wrote {path} ({path.stat().st_size} bytes)")
    if not report.ok:
        for r in report.failures:
            print(f"error: experiment {r.experiment} failed",
                  file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="export_artifacts.py",
        description="Write CI artifact bundles: the quickstart "
                    "trace/flamegraph/telemetry (default) or the full "
                    "benchmark result bundle (--bench).")
    parser.add_argument("--out", type=Path, default=Path("artifacts"),
                        metavar="DIR", help="output directory")
    parser.add_argument("--bench", action="store_true",
                        help="export the full experiment matrix "
                             "(report + per-experiment payloads + "
                             "timings) instead of quickstart artifacts")
    parser.add_argument("--jobs", default="1", metavar="N|auto",
                        help="worker processes for --bench (default 1)")
    parser.add_argument("--monitor", action="store_true",
                        help="run --bench experiments with continuous "
                             "telemetry monitoring")
    parser.add_argument("--experiments", nargs="*", metavar="NAME",
                        help="subset of experiments for --bench "
                             "(default: all public)")
    args = parser.parse_args(argv)

    if args.bench:
        return export_bench(args.out, args.jobs, args.monitor,
                            args.experiments)
    return export_quickstart(args.out)


if __name__ == "__main__":
    sys.exit(main())
