"""repro.obs — cross-cutting observability.

Three pieces (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  log-linear histograms (p50/p99/p999 within one bucket's relative
  error) that absorbs the ad-hoc ``Stats``/counter dicts.
* :mod:`repro.obs.export` — exporters over the hierarchical spans of
  :class:`repro.sim.trace.Tracer`: Chrome ``trace_event`` JSON
  (loadable in Perfetto), collapsed-stack flamegraphs, span-tree
  fingerprints and a pretty-printer.
* :mod:`repro.obs.perf` — the pinned workload matrix behind
  ``scripts/perf_track.py`` and the span-measured Table 1 / Figure 7
  breakdown.  (Import it as ``repro.obs.perf``; it is not imported
  here to keep ``repro.machine`` ↔ ``repro.obs`` import-cycle free.)
"""

from .export import (
    ancestor_chain,
    chrome_trace_json,
    collapsed_stacks,
    format_tree,
    metrics_json,
    span_index,
    tree_fingerprint,
    write_chrome_trace,
    write_flamegraph,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ancestor_chain",
    "chrome_trace_json",
    "collapsed_stacks",
    "format_tree",
    "metrics_json",
    "span_index",
    "tree_fingerprint",
    "write_chrome_trace",
    "write_flamegraph",
]
