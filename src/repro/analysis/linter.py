"""simlint: AST-based determinism & simulation-correctness checks.

The linter parses each file once, builds a little per-module context
(import aliases, which attributes are set-typed, which private names
the module itself owns), then runs all enabled rules in a single AST
walk.  See :mod:`repro.analysis.rules` for what each SIM rule means.

Suppression:

- ``# simlint: ignore[SIM003]`` on the offending line (or on a comment
  line directly above it) suppresses the named rules; ``# simlint:
  ignore`` suppresses every rule for that line.
- ``# simlint: skip-file`` anywhere in the first ten lines skips the
  whole file.
- a baseline file (JSON, see :func:`load_baseline`) grandfathers
  existing violations so new code is held to a higher bar than legacy
  code; baselined entries are keyed by a line-number-independent
  fingerprint so unrelated edits do not resurrect them.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .rules import RULES, Rule, rule_by_id

__all__ = [
    "Violation",
    "LintResult",
    "lint_source",
    "lint_paths",
    "is_entropy_call",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "render_human",
    "render_json",
]

# ---------------------------------------------------------------------------
# Rule knobs (kept together so the doc can point at one place)
# ---------------------------------------------------------------------------

# SIM001: fully-qualified callables that read host time / OS entropy.
ENTROPY_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
}
# module-level RNG namespaces: any call into them is host entropy
# (seeded instances constructed via random.Random(seed) are fine).
_RANDOM_MODULE_OK = {"random.Random", "random.SystemRandom"}   # SIM009's turf
_NUMPY_RANDOM_OK = {
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.SeedSequence", "numpy.random.PCG64",
}

# SIM002: calls that turn iteration order into event order.
SCHEDULING_ATTRS = {
    "succeed", "fail", "timeout", "process", "schedule", "submit",
    "heappush", "heapify", "interrupt",
}
DICT_VIEW_ATTRS = {"keys", "values", "items"}
ORDER_SAFE_WRAPPERS = {"sorted", "min", "max", "sum", "len", "frozenset",
                       "set", "any", "all"}

# SIM003: callables whose first delay-like argument must stay integral.
CLOCK_SINK_ATTRS = {"timeout": 0, "compute": 0, "sleep": 0}
CLOCK_SINK_NAMES = {"Timeout": 1}          # Timeout(sim, delay)
INT_CASTS = {"int", "round", "floor", "ceil"}

# SIM004: attribute calls whose result is an Event (yielding them is the
# protocol); a generator that yields at least one of these is treated as
# a simulation process, and its other yields are held to the protocol.
EVENT_FACTORY_ATTRS = {
    "timeout", "event", "process", "any_of", "all_of",
    "request", "acquire", "get", "put", "submit", "block", "poll",
}

# SIM008: modules whose classes are allocated on the per-I/O hot path.
HOT_PATH_MODULES = ("sim/engine.py", "nvme/spec.py", "sim/trace.py")
HOT_BASE_CLASSES = {"Event", "Timeout", "Process", "Condition"}
_EXEMPT_BASES = {"Enum", "IntEnum", "IntFlag", "Flag", "Exception",
                 "BaseException"}

# SIM011: list mutators that bypass TimeSeries.record()'s sorted-
# samples invariant.  sim/ is the owning layer; a module declaring its
# *own* samples/points attribute (e.g. a dataclass field) is a friend.
SERIES_ATTRS = {"samples", "points"}
SERIES_MUTATORS = {"append", "extend", "insert", "remove", "pop",
                   "clear", "sort", "reverse"}

# SIM013: process-level parallelism is the experiment orchestrator's
# exclusive turf; everything else must stay single-threaded
# deterministic.  Module roots whose import is flagged, plus the pool
# names flagged wherever they are imported from.
MP_MODULE_ROOTS = {"multiprocessing", "_multiprocessing"}
MP_POOL_NAMES = {"ProcessPoolExecutor", "ThreadPoolExecutor", "Pool"}
MP_ALLOWED_SUFFIX = "bench/runner.py"

# SIM014: the chaos oracles (repro/chaos/oracles.py) must be pure
# observers — judging a run may not change it.  Within that module we
# flag (a) attribute assignment/deletion on anything that is not
# ``self``, and (b) calls to known mutating method names on any
# receiver except *scratch*: a local name bound to a freshly built
# container (``out = []``, ``seen = set()``).  Parameters, loop
# variables and lookups are simulation state; scratch is the oracle's
# own working memory.
ORACLE_MODULE_SUFFIX = "chaos/oracles.py"
ORACLE_MUTATORS = {
    # container mutators
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "update", "setdefault", "add", "discard",
    # event/engine/process mutators
    "succeed", "fail", "interrupt", "schedule", "run", "run_process",
    "process", "spawn", "timeout",
    # device/queue/kernel mutators
    "submit", "abort", "reap", "post_completion", "pop_completion",
    "write_blocks", "zero_blocks", "flush",
    # telemetry / fault / fs mutators
    "record", "observe", "inc", "set", "log", "commit",
    "drop_running", "record_crash", "sample", "arm", "disarm",
    "recover_after_crash", "put", "acquire", "release",
}
ORACLE_FRESH_BUILTINS = {"list", "dict", "set", "tuple", "sorted",
                         "Counter", "defaultdict", "OrderedDict"}

# SIM012: the documented gauge naming scheme (docs/observability.md):
# <subsystem>.<object>.<metric> — lowercase/digits/underscores, two or
# more dot-separated components.  Keep in sync with
# repro.obs.monitor.GAUGE_NAME_RE.
GAUGE_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

_PRAGMA_RE = re.compile(r"#\s*simlint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*simlint:\s*skip-file")


def is_entropy_call(full: str) -> bool:
    """True when the dotted callable ``full`` reads host time/entropy.

    Shared between the per-module SIM001 check and the whole-program
    SIM016 taint seed (:mod:`repro.analysis.program`).
    """
    return (
        full in ENTROPY_CALLS
        or full.startswith("secrets.")
        or (full.startswith("random.")
            and full not in _RANDOM_MODULE_OK
            and full.count(".") == 1)
        or (full.startswith("numpy.random.")
            and full not in _NUMPY_RANDOM_OK)
    )


# ---------------------------------------------------------------------------
# Violations
# ---------------------------------------------------------------------------

@dataclass
class Violation:
    rule: Rule
    path: str
    line: int
    col: int
    message: str
    source_line: str = ""
    # set by the autofixer when it knows a mechanical rewrite
    fix_span: Optional[Tuple[int, int, int, int]] = None  # l0,c0,l1,c1
    fix_text: Optional[str] = None

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: independent of line numbers."""
        h = hashlib.sha1()
        h.update(self.rule.id.encode())
        h.update(b"\0")
        h.update(self.path.encode())
        h.update(b"\0")
        h.update(self.source_line.strip().encode())
        return h.hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.id,
            "name": self.rule.name,
            "severity": self.rule.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class LintResult:
    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    baselined: int = 0

    @property
    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.rule.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.violations


# ---------------------------------------------------------------------------
# Module context: what the file as a whole tells us
# ---------------------------------------------------------------------------

class _ModuleContext:
    """Facts gathered in a pre-pass over the whole module."""

    def __init__(self, tree: ast.Module, source_lines: List[str]):
        self.aliases: Dict[str, str] = {}       # local name -> dotted path
        self.set_attrs: Set[str] = set()        # attrs assigned set() etc.
        self.dict_attrs: Set[str] = set()
        self.own_private: Set[str] = set()      # attrs the module assigns
        self.own_attrs: Set[str] = set()        # every name it assigns
        self.source_lines = source_lines
        self._scan(tree)

    def _scan(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    self.aliases[a.asname or a.name.split(".")[0]] = a.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for a in node.names:
                    self.aliases[a.asname or a.name] = (
                        f"{node.module}.{a.name}")
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                value = node.value
                ann = getattr(node, "annotation", None)
                for t in targets:
                    name = None
                    if isinstance(t, ast.Attribute) and _is_self(t.value):
                        name = t.attr
                    elif isinstance(t, ast.Name):
                        name = t.id
                    if name is None:
                        continue
                    self.own_attrs.add(name)
                    if isinstance(t, ast.Attribute) and \
                            name.startswith("_") and not name.startswith("__"):
                        self.own_private.add(name)
                    kind = _container_kind(value, ann)
                    if kind == "set":
                        self.set_attrs.add(name)
                    elif kind == "dict":
                        self.dict_attrs.add(name)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path for a Name/Attribute chain, through import aliases."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _is_self(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in ("self", "cls")


def _container_kind(value: Optional[ast.AST],
                    ann: Optional[ast.AST]) -> Optional[str]:
    """Classify an assignment as creating a set or a dict."""
    for a in (ann,):
        if a is None:
            continue
        txt = ast.unparse(a) if hasattr(ast, "unparse") else ""
        low = txt.lower()
        if low.startswith("set") or "set[" in low:
            return "set"
        if low.startswith("dict") or "dict[" in low or \
                low.startswith('"dict') or low.startswith("'dict"):
            return "dict"
    if value is None:
        return None
    if isinstance(value, ast.Set):
        return "set"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, ast.SetComp):
        return "set"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id == "set":
            return "set"
        if value.func.id in ("dict", "OrderedDict", "defaultdict",
                            "Counter"):
            return "dict"
    return None


# ---------------------------------------------------------------------------
# The visitor
# ---------------------------------------------------------------------------

def _walk_no_nested(node: ast.AST) -> Iterable[ast.AST]:
    """Walk statements/expressions without descending into nested defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        n = stack.pop()
        yield n
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(n))


def _contains_yield(fn: ast.AST) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in _walk_no_nested(fn))


def _dotted_target(node: ast.AST) -> Optional[str]:
    """'ev', 'self._go', 'state.done' for a Name/Attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _scratch_names(fn: ast.AST) -> Set[str]:
    """Names bound to freshly built containers inside ``fn`` (SIM014).

    ``out = []`` / ``seen: Set[str] = set()`` make *scratch* the
    oracle may mutate; ``inode = fs.lookup(...)`` or a loop variable
    alias simulation state and do not.
    """
    fresh: Set[str] = set()
    for n in ast.walk(fn):
        if isinstance(n, ast.Assign):
            targets, value = n.targets, n.value
        elif isinstance(n, ast.AnnAssign) and n.value is not None:
            targets, value = [n.target], n.value
        else:
            continue
        if not _is_fresh_container(value):
            continue
        for t in targets:
            if isinstance(t, ast.Name):
                fresh.add(t.id)
    return fresh


def _is_fresh_container(value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.Tuple,
                          ast.ListComp, ast.SetComp, ast.DictComp,
                          ast.GeneratorExp)):
        return True
    return (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ORACLE_FRESH_BUILTINS)


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, ctx: _ModuleContext,
                 enabled: Set[str], is_hot_module: bool):
        self.path = path
        self.ctx = ctx
        self.enabled = enabled
        self.is_hot = is_hot_module
        norm = path.replace("\\", "/")
        # sim/ owns TimeSeries and may touch .samples directly (SIM011)
        self._in_sim_layer = "/sim/" in norm or norm.startswith("sim/")
        # bench/runner.py is the one sanctioned process-pool site (SIM013)
        self._is_pool_owner = norm.endswith(MP_ALLOWED_SUFFIX)
        # chaos/oracles.py is held to read-only discipline (SIM014)
        self._is_oracle_module = norm.endswith(ORACLE_MODULE_SUFFIX)
        self._oracle_scratch: List[Set[str]] = []
        self.out: List[Violation] = []
        self._fn_stack: List[dict] = []   # {"generator":bool,"process":bool}
        # comprehension nodes consumed by an order-insensitive callable
        # (sorted(x for x in s), len(...), ...): exempt from SIM002
        self._laundered: Set[int] = set()

    # -- plumbing ----------------------------------------------------------

    def report(self, rule_id: str, node: ast.AST, message: str,
               fix_span: Optional[Tuple[int, int, int, int]] = None,
               fix_text: Optional[str] = None) -> None:
        if rule_id not in self.enabled:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        src = ""
        if 1 <= line <= len(self.ctx.source_lines):
            src = self.ctx.source_lines[line - 1]
        self.out.append(Violation(
            rule=rule_by_id(rule_id), path=self.path, line=line, col=col,
            message=message, source_line=src,
            fix_span=fix_span, fix_text=fix_text))

    def _resolve_call(self, node: ast.Call) -> Optional[str]:
        return self.ctx.resolve(node.func)

    # -- function context --------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _enter_function(self, node) -> None:
        is_gen = _contains_yield(node)
        is_process = False
        if is_gen:
            for n in _walk_no_nested(node):
                if isinstance(n, ast.Yield) and \
                        isinstance(n.value, ast.Call) and \
                        isinstance(n.value.func, ast.Attribute) and \
                        n.value.func.attr in EVENT_FACTORY_ATTRS:
                    is_process = True
                    break
        self._fn_stack.append({"generator": is_gen, "process": is_process})
        if self._is_oracle_module:
            self._oracle_scratch.append(_scratch_names(node))
        self._check_double_trigger(node)
        self.generic_visit(node)
        if self._is_oracle_module:
            self._oracle_scratch.pop()
        self._fn_stack.pop()

    @property
    def _in_generator(self) -> bool:
        return bool(self._fn_stack) and self._fn_stack[-1]["generator"]

    @property
    def _in_process(self) -> bool:
        return bool(self._fn_stack) and self._fn_stack[-1]["process"]

    # -- SIM001 / SIM009: entropy ------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and \
                node.func.id in ORDER_SAFE_WRAPPERS:
            for arg in node.args:
                if isinstance(arg, (ast.ListComp, ast.SetComp,
                                    ast.GeneratorExp)):
                    self._laundered.add(id(arg))
        full = self._resolve_call(node)
        if full:
            self._check_entropy(node, full)
            self._check_unseeded_rng(node, full)
            self._check_clock_sink(node, full)
            self._check_id_ordering_call(node, full)
            self._check_mp_call(node, full)
        self._check_series_mutation_call(node)
        self._check_gauge_name(node)
        self._check_oracle_mutation_call(node)
        self.generic_visit(node)

    def _check_entropy(self, node: ast.Call, full: str) -> None:
        if is_entropy_call(full):
            self.report(
                "SIM001", node,
                f"call to {full}() reads wall-clock time or OS entropy; "
                f"use sim.now / a seeded random.Random instead")

    def _check_unseeded_rng(self, node: ast.Call, full: str) -> None:
        if full == "random.SystemRandom":
            self.report("SIM009", node,
                        "random.SystemRandom draws OS entropy and cannot "
                        "be seeded; use random.Random(seed)")
            return
        if full in ("random.Random", "numpy.random.default_rng",
                    "numpy.random.SeedSequence"):
            if not node.args and not node.keywords:
                self.report(
                    "SIM009", node,
                    f"{full}() constructed without a seed draws OS "
                    f"entropy; thread a seed from the experiment config")

    # -- SIM003: float into the clock --------------------------------------

    def _check_clock_sink(self, node: ast.Call, full: str) -> None:
        arg_idx: Optional[int] = None
        label = full
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in CLOCK_SINK_ATTRS:
            arg_idx = CLOCK_SINK_ATTRS[node.func.attr]
            label = node.func.attr
        else:
            tail = full.rsplit(".", 1)[-1]
            if tail in CLOCK_SINK_NAMES:
                arg_idx = CLOCK_SINK_NAMES[tail]
                label = tail
        if arg_idx is None or len(node.args) <= arg_idx:
            return
        arg = node.args[arg_idx]
        taint = _float_taint(arg)
        if taint is not None:
            fix = None
            if isinstance(taint, ast.Constant) and \
                    getattr(taint, "end_lineno", None) == taint.lineno:
                fix = (taint.lineno, taint.col_offset,
                       taint.end_lineno, taint.end_col_offset)
            self.report(
                "SIM003", arg,
                f"{label}() receives a float "
                f"({ast.unparse(arg) if hasattr(ast, 'unparse') else '?'}); "
                f"the clock is integer nanoseconds — wrap in int()",
                fix_span=fix,
                fix_text=(f"int({ast.unparse(taint)})"
                          if fix and hasattr(ast, "unparse") else None))

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            if isinstance(t, ast.Attribute) and t.attr == "now" and \
                    _float_taint(node.value) is not None:
                self.report("SIM003", node,
                            "assigning a float to the simulation clock; "
                            "sim.now is integer nanoseconds")
            self._check_private_mutation(t)
            self._check_series_rebind(t)
            self._check_oracle_assign(t)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        t = node.target
        if isinstance(t, ast.Attribute) and t.attr == "now" and \
                _float_taint(node.value) is not None:
            self.report("SIM003", node,
                        "float arithmetic on the simulation clock; "
                        "sim.now is integer nanoseconds")
        self._check_private_mutation(t)
        self._check_series_rebind(t)
        self._check_oracle_assign(t)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for t in node.targets:
            self._check_private_mutation(t)
            self._check_oracle_assign(t)
        self.generic_visit(node)

    # -- SIM007: cross-layer private mutation -------------------------------

    def _check_private_mutation(self, target: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        attr = target.attr
        if not attr.startswith("_") or attr.startswith("__"):
            return
        base = target.value
        if _is_self(base):
            return
        # friend access: some class in this module owns the attribute
        if attr in self.ctx.own_private:
            return
        expr = _dotted_target(target) or f"?.{attr}"
        self.report(
            "SIM007", target,
            f"mutating private state {expr} across a layer boundary; "
            f"add a public method on the owning class")

    # -- SIM011 / SIM012: telemetry hygiene ---------------------------------

    def _check_series_mutation_call(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in SERIES_MUTATORS
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in SERIES_ATTRS):
            return
        self._report_series_mutation(func.value, f".{func.attr}()")

    def _check_series_rebind(self, target: ast.AST) -> None:
        if isinstance(target, ast.Attribute) and \
                target.attr in SERIES_ATTRS:
            self._report_series_mutation(target, " assignment")

    def _report_series_mutation(self, attr_node: ast.Attribute,
                                how: str) -> None:
        if self._in_sim_layer:
            return
        if _is_self(attr_node.value):
            return
        # Friend: this module declares its own samples/points field
        # (e.g. a dataclass with a `samples` list of its own).
        if attr_node.attr in self.ctx.own_attrs:
            return
        expr = _dotted_target(attr_node) or f"?.{attr_node.attr}"
        self.report(
            "SIM011", attr_node,
            f"direct {expr}{how} bypasses TimeSeries.record() and can "
            f"break the sorted-samples invariant windowed SLO reducers "
            f"rely on; use record()")

    # -- SIM014: chaos oracles are pure observers ---------------------------

    def _oracle_is_scratch(self, name: str) -> bool:
        return any(name in frame for frame in self._oracle_scratch)

    def _check_oracle_assign(self, target: ast.AST) -> None:
        if not self._is_oracle_module:
            return
        if isinstance(target, ast.Attribute):
            if _is_self(target.value):
                return
            # friend: the module's own dataclass fields (cf. SIM011)
            if target.attr in self.ctx.own_attrs:
                return
            expr = _dotted_target(target) or f"?.{target.attr}"
            self.report(
                "SIM014", target,
                f"oracle assigns {expr}: oracles must not mutate the "
                f"run they are judging — move state changes into the "
                f"executor")
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name) and \
                    self._oracle_is_scratch(base.id):
                return
            expr = _dotted_target(base) or "<expr>"
            self.report(
                "SIM014", target,
                f"oracle writes into {expr}[...]: only locally built "
                f"scratch containers may be mutated inside an oracle")

    def _check_oracle_mutation_call(self, node: ast.Call) -> None:
        if not self._is_oracle_module:
            return
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in ORACLE_MUTATORS):
            return
        recv = func.value
        if _is_self(recv):
            return
        # self.items.append(...): the class's own state, not the run's
        if isinstance(recv, ast.Attribute) and _is_self(recv.value):
            return
        if isinstance(recv, ast.Name) and \
                self._oracle_is_scratch(recv.id):
            return
        expr = _dotted_target(recv) or "<expr>"
        self.report(
            "SIM014", node,
            f"oracle calls {expr}.{func.attr}(): mutating methods on "
            f"simulation state are off limits inside oracles — read "
            f"attributes and return Violations instead")

    def _check_gauge_name(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "gauge"):
            return
        if not node.args:
            return
        arg = node.args[0]
        if not (isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)):
            return     # dynamic names: the producer's responsibility
        if GAUGE_NAME_RE.match(arg.value):
            return
        self.report(
            "SIM012", arg,
            f"gauge name {arg.value!r} is outside the documented scheme "
            f"<subsystem>.<object>.<metric> (lowercase dotted, two or "
            f"more components; see docs/observability.md)")

    # -- SIM013: multiprocessing outside the runner --------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in MP_MODULE_ROOTS:
                self._report_mp(node, f"import {alias.name}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        root = module.split(".")[0]
        if root in MP_MODULE_ROOTS:
            self._report_mp(node, f"from {module} import ...")
        elif root == "concurrent":
            pools = [a.name for a in node.names
                     if a.name in MP_POOL_NAMES or a.name == "*"]
            if pools:
                self._report_mp(
                    node, f"from {module} import {', '.join(pools)}")
        self.generic_visit(node)

    def _check_mp_call(self, node: ast.Call, full: str) -> None:
        root = full.split(".")[0]
        if root in MP_MODULE_ROOTS or (
                root == "concurrent"
                and full.rsplit(".", 1)[-1] in MP_POOL_NAMES):
            self._report_mp(node, f"call to {full}()")

    def _report_mp(self, node: ast.AST, what: str) -> None:
        if self._is_pool_owner:
            return
        self.report(
            "SIM013", node,
            f"{what}: process-level parallelism is allowed only in "
            f"repro/bench/runner.py (the experiment orchestrator); "
            f"simulation code must stay single-threaded deterministic")

    # -- SIM002: unordered iteration ----------------------------------------

    def visit_For(self, node: ast.For) -> None:
        kind = self._iterable_kind(node.iter)
        if kind and self._body_schedules(node.body):
            self.report(
                "SIM002", node.iter,
                f"iterating a {kind} while the loop body schedules "
                f"events; wrap the iterable in sorted() to pin the order",
                **self._sorted_fix(node.iter))
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comp(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comp(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comp(node)
        self.generic_visit(node)

    def _check_comp(self, node) -> None:
        if not self._in_generator or id(node) in self._laundered:
            return
        for gen in node.generators:
            kind = self._iterable_kind(gen.iter, sets_only=True)
            if kind:
                self.report(
                    "SIM002", gen.iter,
                    f"comprehension over a {kind} inside a simulation "
                    f"process; the result order feeds event scheduling — "
                    f"wrap the iterable in sorted()",
                    **self._sorted_fix(gen.iter))

    def _sorted_fix(self, iter_node: ast.AST) -> dict:
        if getattr(iter_node, "end_lineno", None) != iter_node.lineno or \
                not hasattr(ast, "unparse"):
            return {}
        return {
            "fix_span": (iter_node.lineno, iter_node.col_offset,
                         iter_node.end_lineno, iter_node.end_col_offset),
            "fix_text": f"sorted({ast.unparse(iter_node)})",
        }

    def _iterable_kind(self, it: ast.AST,
                       sets_only: bool = False) -> Optional[str]:
        """'set' / 'dict view' if ``it`` iterates in hash/insertion order."""
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Name) and \
                it.func.id in ORDER_SAFE_WRAPPERS:
            return None
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute):
            if it.func.attr in DICT_VIEW_ATTRS and not sets_only:
                return "dict view"
            return None
        kind = self._expr_container(it)
        if kind == "set":
            return "set"
        if kind == "dict" and not sets_only:
            return "dict"
        return None

    def _expr_container(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
            return "set"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "set":
                return "set"
            return None
        name = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        if name is None:
            return None
        if name in self.ctx.set_attrs:
            return "set"
        if name in self.ctx.dict_attrs:
            return "dict"
        return None

    def _body_schedules(self, body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            for n in _walk_no_nested_stmts(stmt):
                if isinstance(n, (ast.Yield, ast.YieldFrom)):
                    return True
                if isinstance(n, ast.Call) and \
                        isinstance(n.func, ast.Attribute) and \
                        n.func.attr in SCHEDULING_ATTRS:
                    return True
                if isinstance(n, ast.Call) and \
                        isinstance(n.func, ast.Name) and \
                        n.func.id in ("heappush", "heapify"):
                    return True
        return False

    # -- SIM004: yield of a raw value ---------------------------------------

    def visit_Yield(self, node: ast.Yield) -> None:
        if self._in_process:
            bad = node.value is None or isinstance(
                node.value, (ast.Constant, ast.BinOp, ast.Compare,
                             ast.List, ast.Tuple, ast.Dict, ast.Set,
                             ast.JoinedStr))
            if bad:
                what = ("nothing" if node.value is None else
                        ast.unparse(node.value)
                        if hasattr(ast, "unparse") else "a raw value")
                self.report(
                    "SIM004", node,
                    f"simulation process yields {what}; processes must "
                    f"yield Event objects (sim.timeout(...), ev, ...)")
        self.generic_visit(node)

    # -- SIM005: double trigger ---------------------------------------------

    def _check_double_trigger(self, fn) -> None:
        for block in _statement_blocks(fn):
            seen: Dict[str, ast.AST] = {}
            for stmt in block:
                if isinstance(stmt, (ast.If, ast.For, ast.While, ast.Try,
                                     ast.With, ast.Return, ast.Raise,
                                     ast.Continue, ast.Break)):
                    seen.clear()
                    continue
                call = _trigger_call(stmt)
                if call is None:
                    continue
                target, node = call
                if target in seen:
                    self.report(
                        "SIM005", node,
                        f"{target}.succeed()/fail() already called on "
                        f"this path; events are one-shot")
                else:
                    seen[target] = node

    # -- SIM006: swallowed interrupt ----------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if _catches_interrupt(node.type) and _body_is_empty(node.body):
            self.report(
                "SIM006", node,
                "except Interrupt with an empty body swallows the "
                "interrupt cause; re-raise, return, or handle it")
        self.generic_visit(node)

    # -- SIM008: missing __slots__ ------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.is_hot:
            self._check_slots(node)
        self._fn_stack.append({"generator": False, "process": False})
        self.generic_visit(node)
        self._fn_stack.pop()

    def _check_slots(self, node: ast.ClassDef) -> None:
        base_names = {b.id if isinstance(b, ast.Name) else
                      getattr(b, "attr", "") for b in node.bases}
        if base_names & _EXEMPT_BASES:
            return
        is_dataclass = False
        has_slots_kw = False
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = (target.id if isinstance(target, ast.Name)
                    else getattr(target, "attr", ""))
            if name == "dataclass":
                is_dataclass = True
                if isinstance(dec, ast.Call):
                    for kw in dec.keywords:
                        if kw.arg == "slots" and \
                                isinstance(kw.value, ast.Constant) and \
                                kw.value.value is True:
                            has_slots_kw = True
        has_slots_body = any(
            isinstance(s, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in s.targets)
            for s in node.body)
        relevant = is_dataclass or bool(base_names & HOT_BASE_CLASSES)
        if not relevant:
            return
        if is_dataclass and not has_slots_kw:
            self.report(
                "SIM008", node,
                f"hot-path dataclass {node.name} without slots=True; "
                f"instances are allocated per-I/O")
        elif not is_dataclass and not has_slots_body:
            self.report(
                "SIM008", node,
                f"hot-path class {node.name} without __slots__; "
                f"instances are allocated per-I/O")

    # -- SIM010: id() ordering ----------------------------------------------

    def _check_id_ordering_call(self, node: ast.Call, full: str) -> None:
        tail = full.rsplit(".", 1)[-1]
        # d.get(id(x)) / d.pop(id(x)) / d.setdefault(id(x), ...)
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in ("get", "pop", "setdefault") and \
                node.args and _is_id_call(node.args[0]):
            self.report(
                "SIM010", node.args[0],
                "id() used as a container key; memory addresses differ "
                "across runs — use a deterministic identifier")
            return
        if tail in ("sorted", "min", "max"):
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                if isinstance(kw.value, ast.Name) and kw.value.id == "id":
                    self.report("SIM010", kw.value,
                                "sorting by id() orders by memory address")
                elif isinstance(kw.value, ast.Lambda) and any(
                        _is_id_call(n)
                        for n in ast.walk(kw.value.body)):
                    self.report("SIM010", kw.value,
                                "sort key uses id(); memory addresses "
                                "differ across runs")
        if tail in ("heappush",):
            for arg in node.args:
                for n in ast.walk(arg):
                    if _is_id_call(n):
                        self.report(
                            "SIM010", n,
                            "id() inside a heap entry makes the heap "
                            "order address dependent")

    def visit_Subscript(self, node: ast.Subscript) -> None:
        sl = node.slice
        if _is_id_call(sl):
            self.report(
                "SIM010", sl,
                "id() used as a container key; memory addresses differ "
                "across runs — use a deterministic identifier")
        self.generic_visit(node)


def _is_id_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id")


def _walk_no_nested_stmts(stmt: ast.stmt) -> Iterable[ast.AST]:
    stack: List[ast.AST] = [stmt]
    while stack:
        n = stack.pop()
        yield n
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(n))


def _statement_blocks(fn) -> Iterable[List[ast.stmt]]:
    """Every statement list inside ``fn`` (body, orelse, finally, ...)."""
    stack: List[ast.AST] = [fn]
    while stack:
        n = stack.pop()
        for name in ("body", "orelse", "finalbody"):
            block = getattr(n, name, None)
            if isinstance(block, list) and block and \
                    isinstance(block[0], ast.stmt):
                yield block
        for child in ast.iter_child_nodes(n):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


def _trigger_call(stmt: ast.stmt) -> Optional[Tuple[str, ast.AST]]:
    if not isinstance(stmt, ast.Expr) or \
            not isinstance(stmt.value, ast.Call):
        return None
    call = stmt.value
    if not isinstance(call.func, ast.Attribute) or \
            call.func.attr not in ("succeed", "fail"):
        return None
    target = _dotted_target(call.func.value)
    if target is None:
        return None
    return target, call


def _catches_interrupt(type_node: Optional[ast.AST]) -> bool:
    if type_node is None:
        return False
    candidates = (type_node.elts if isinstance(type_node, ast.Tuple)
                  else [type_node])
    for c in candidates:
        name = (c.id if isinstance(c, ast.Name)
                else getattr(c, "attr", ""))
        if name == "Interrupt":
            return True
    return False


def _body_is_empty(body: Sequence[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and \
                isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


def _float_taint(node: ast.AST) -> Optional[ast.AST]:
    """The sub-expression that makes ``node`` float-valued, or None.

    int()/round()/floor()/ceil() launder the taint; ``//`` is integer
    division and safe; ``/`` is always float in Python 3.
    """
    if isinstance(node, ast.Constant):
        return node if isinstance(node.value, float) else None
    if isinstance(node, ast.Call):
        name = (node.func.id if isinstance(node.func, ast.Name)
                else getattr(node.func, "attr", ""))
        if name in INT_CASTS:
            return None
        return None   # unknown call: assume the callee keeps the contract
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return node
        left = _float_taint(node.left)
        if left is not None:
            return left
        return _float_taint(node.right)
    if isinstance(node, ast.UnaryOp):
        return _float_taint(node.operand)
    if isinstance(node, ast.IfExp):
        return _float_taint(node.body) or _float_taint(node.orelse)
    return None


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------

def _merge_pragma_ids(a: Optional[Set[str]],
                      b: Optional[Set[str]]) -> Optional[Set[str]]:
    """Union of two suppression sets; None ("all rules") absorbs."""
    if a is None or b is None:
        return None
    return a | b


def _pragma_map(source_lines: List[str]) -> Dict[int, Optional[Set[str]]]:
    """line -> suppressed rule ids (None = all rules).

    A comment-only pragma line covers the next line too.  Stacked
    comment pragmas cascade — each comment line's accumulated set
    (its own rules plus anything carried from comment pragmas above)
    flows onto the following line — and an own-line pragma under a
    comment pragma *merges* with the carried set instead of
    overwriting it.
    """
    out: Dict[int, Optional[Set[str]]] = {}
    carry: Optional[Set[str]] = None
    have_carry = False
    for i, line in enumerate(source_lines, start=1):
        m = _PRAGMA_RE.search(line)
        own: Optional[Set[str]] = None
        have_own = False
        if m:
            have_own = True
            if m.group(1) is not None:
                own = {p.strip() for p in m.group(1).split(",")
                       if p.strip()}
        if have_own and have_carry:
            eff = _merge_pragma_ids(own, carry)
        elif have_own:
            eff = own
        elif have_carry:
            eff = carry
        else:
            carry, have_carry = None, False
            continue
        out[i] = eff
        # a comment-only pragma line forwards its accumulated set
        if m and line.strip().startswith("#"):
            carry, have_carry = eff, True
        else:
            carry, have_carry = None, False
    return out


def _suppressed(v: Violation,
                pragmas: Dict[int, Optional[Set[str]]]) -> bool:
    ids = pragmas.get(v.line, "missing")
    if ids == "missing":
        return False
    return ids is None or v.rule.id in ids   # type: ignore[operator]


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>",
                enabled: Optional[Iterable[str]] = None,
                is_hot_module: Optional[bool] = None) -> List[Violation]:
    """Lint one module's source text; returns un-suppressed violations."""
    enabled_set = set(enabled) if enabled is not None else \
        {r.id for r in RULES}
    lines = source.splitlines()
    for line in lines[:10]:
        if _SKIP_FILE_RE.search(line):
            return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line_no = exc.lineno or 1
        src = lines[line_no - 1] if 1 <= line_no <= len(lines) else ""
        v = Violation(rule=rule_by_id("SIM000"), path=path,
                      line=line_no, col=exc.offset or 0,
                      message=f"syntax error: {exc.msg}",
                      source_line=src)
        return [v] if "SIM000" in enabled_set else []
    if is_hot_module is None:
        norm = path.replace("\\", "/")
        is_hot_module = any(norm.endswith(m) for m in HOT_PATH_MODULES)
    ctx = _ModuleContext(tree, lines)
    checker = _Checker(path, ctx, enabled_set, is_hot_module)
    checker.visit(tree)
    pragmas = _pragma_map(lines)
    kept = [v for v in checker.out if not _suppressed(v, pragmas)]
    kept.sort(key=lambda v: (v.line, v.col, v.rule.id))
    return kept


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    for p in paths:
        path = Path(p)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[str],
               enabled: Optional[Iterable[str]] = None,
               root: Optional[str] = None) -> LintResult:
    result = LintResult()
    root_path = Path(root) if root else None
    for f in iter_python_files(paths):
        rel = f
        if root_path is not None:
            try:
                rel = f.relative_to(root_path)
            except ValueError:
                rel = f
        result.files_checked += 1
        source = f.read_text(encoding="utf-8")
        result.violations.extend(
            lint_source(source, path=str(rel).replace("\\", "/"),
                        enabled=enabled))
    return result


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def load_baseline(path: str) -> Dict[str, str]:
    """fingerprint -> justification (free text)."""
    p = Path(path)
    if not p.exists():
        return {}
    data = json.loads(p.read_text(encoding="utf-8"))
    entries = data.get("violations", data) if isinstance(data, dict) else {}
    out: Dict[str, str] = {}
    for fp, meta in entries.items():
        out[fp] = meta.get("justification", "") \
            if isinstance(meta, dict) else str(meta)
    return out


def write_baseline(path: str, violations: Sequence[Violation],
                   justification: str = "grandfathered") -> None:
    entries = {}
    for v in violations:
        entries[v.fingerprint] = {
            "rule": v.rule.id,
            "path": v.path,
            "line": v.line,
            "summary": v.message,
            "justification": justification,
        }
    payload = {
        "comment": "simlint baseline: existing violations grandfathered "
                   "for incremental burn-down.  Do not add entries by "
                   "hand without a justification.",
        "violations": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def apply_baseline(result: LintResult,
                   baseline: Dict[str, str]) -> LintResult:
    kept, skipped = [], 0
    for v in result.violations:
        if v.fingerprint in baseline:
            skipped += 1
        else:
            kept.append(v)
    return LintResult(violations=kept,
                      files_checked=result.files_checked,
                      baselined=result.baselined + skipped)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def render_human(result: LintResult) -> str:
    lines = []
    for v in result.violations:
        lines.append(f"{v.path}:{v.line}:{v.col + 1}: "
                     f"{v.rule.id} {v.rule.severity}: {v.message}")
        if v.source_line.strip():
            lines.append(f"    {v.source_line.strip()}")
    n_err = len(result.errors)
    n_warn = len(result.violations) - n_err
    lines.append(
        f"simlint: {result.files_checked} files, {n_err} errors, "
        f"{n_warn} warnings"
        + (f", {result.baselined} baselined" if result.baselined else ""))
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps({
        "files_checked": result.files_checked,
        "baselined": result.baselined,
        "violations": [v.to_dict() for v in result.violations],
    }, indent=2)
