"""Whole-program analysis: import graph, call graph, fact inference.

The per-module linter (:mod:`repro.analysis.linter`) sees one file at
a time, which is exactly the blind spot a layered simulator cannot
afford: ``time.time()`` hidden one helper away, an oracle calling a
mutating method through a module boundary, ``nvme/`` importing
``apps/``.  This module parses the whole package **once** and builds:

1. a **module import graph** (checked against the architecture DAG in
   :mod:`repro.analysis.architecture` — rule SIM015, including cycle
   detection);
2. a **conservative call graph** with per-function fact summaries —
   reads host entropy, mutates non-local state, allocates unslotted
   classes — **fixpoint-propagated** interprocedurally (rules SIM016,
   SIM017, SIM018).

Call edges come in two kinds.  *Direct* edges are precisely resolved:
module-level calls, imported names (through ``__init__`` re-export
chains), ``self.method()`` through the class and its repo bases, and
``super().__init__``.  *Dynamic* edges resolve an attribute call by
method name against every repo class that defines it — deliberately
over-approximate.  Entropy taint (SIM016) and hot-path reachability
(SIM018) follow direct edges plus dynamic edges with a *unique*
candidate; purity facts (SIM017) follow every edge, because an oracle
must not call anything that *might* mutate the run it is judging.

Known conservatisms (documented in docs/static_analysis.md): first-
class function values and callbacks are not followed; a local name
rebound from simulation state (``qp = machine.qps[0]``) roots as
unknown non-local state; builtin container mutators (``.append`` &c.)
are assumed to mutate their receiver even if a repo class defines a
pure method of the same name.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .architecture import Layer, Manifest, default_manifest
from .linter import (
    Violation,
    _SKIP_FILE_RE,
    _pragma_map,
    _suppressed,
    is_entropy_call,
    rule_by_id,
)
from .rules import RULES

__all__ = [
    "Program",
    "ProgramResult",
    "build_program",
    "analyze_program",
    "lint_program",
    "export_dot",
    "export_json",
]

# Builtin container methods that mutate their receiver: Python
# semantics, not repo guesswork (cf. the SIM014 name list this pass
# replaces for repo helpers).
BUILTIN_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "update", "setdefault", "add", "discard", "popitem",
    "appendleft", "popleft",
}

# Method names shared with builtin dict/list/str *read* APIs: never
# resolved by name — ``d.get(k)`` on a plain dict would otherwise
# alias every repo class that defines a method called ``get``
# (sim.resources.Store.get schedules events) and poison the purity of
# everything that reads a dict.  Precisely-resolved calls to such
# methods (self.get(), an imported symbol) still form direct edges.
DYNAMIC_NAME_SKIP = {
    "get", "keys", "values", "items", "copy", "count", "index",
    "split", "join", "strip", "startswith", "endswith", "format",
    "encode", "decode", "hex", "bit_length",
}

# Constructors of fresh containers: mutating their result is scratch.
FRESH_BUILTINS = {
    "list", "dict", "set", "tuple", "frozenset", "sorted", "reversed",
    "Counter", "defaultdict", "OrderedDict", "deque", "bytearray",
}

# Base-class names that exempt a class from the slots requirement.
SLOTS_EXEMPT_BASES = {
    "Enum", "IntEnum", "IntFlag", "Flag", "StrEnum",
    "Exception", "BaseException", "ValueError", "KeyError",
    "TypeError", "RuntimeError", "OSError", "AttributeError",
    "NamedTuple", "Protocol", "ABC", "Generic",
}

_MAX_DYNAMIC_CANDIDATES = 25
_MAX_REEXPORT_DEPTH = 8

# Roots for receiver/argument classification.
SELF, SCRATCH, PARAM, OTHER, FRESH = \
    "self", "scratch", "param", "other", "fresh"

_EMPTY_LAYER = Layer("", ())


# ---------------------------------------------------------------------------
# Graph data model
# ---------------------------------------------------------------------------

@dataclass
class CallSite:
    """One resolved call edge out of a function."""

    line: int
    callee: str                    # function qualname "pkg.mod:Class.m"
    kind: str                      # "direct" | "dynamic"
    unique: bool = True            # dynamic edge with a single candidate
    receiver_root: Optional[str] = None   # SELF/SCRATCH/PARAM/OTHER/None
    arg_roots: Tuple[str, ...] = ()


@dataclass
class AllocSite:
    line: int
    cls: str                       # class dotted path "pkg.mod.Class"


@dataclass
class MutationSite:
    line: int
    desc: str                      # human description of the mutation


@dataclass
class FunctionInfo:
    qualname: str                  # "pkg.mod:Class.m" or "pkg.mod:f"
    module: str
    name: str
    cls: Optional[str]
    lineno: int
    # seed facts (intraprocedural)
    entropy_sites: List[Tuple[int, str]] = field(default_factory=list)
    mutations: Dict[str, MutationSite] = field(default_factory=dict)
    allocations: List[AllocSite] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)


@dataclass
class ClassInfo:
    name: str
    module: str
    lineno: int
    bases: List[str] = field(default_factory=list)   # resolved or raw
    has_slots: bool = False
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qual

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    name: str                      # "repro.sim.engine"
    path: str                      # repo-relative posix path
    is_package: bool
    tree: Optional[ast.Module]
    lines: List[str]
    aliases: Dict[str, str] = field(default_factory=dict)
    imports: Dict[str, int] = field(default_factory=dict)  # mod -> line
    functions: Dict[str, str] = field(default_factory=dict)  # f -> qual
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


@dataclass
class Program:
    """The parsed package: modules, classes, functions, edges."""

    package: str
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    methods_by_name: Dict[str, List[str]] = field(default_factory=dict)
    parse_failures: List[str] = field(default_factory=list)

    # -- symbol resolution --------------------------------------------------

    def module_of(self, dotted: str) -> Optional[str]:
        """Longest module-name prefix of ``dotted``."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            cand = ".".join(parts[:i])
            if cand in self.modules:
                return cand
        return None

    def resolve_symbol(self, dotted: str,
                       _depth: int = 0) -> Optional[Tuple[str, str]]:
        """What does this dotted path denote?

        Returns ("module", name) / ("func", qualname) /
        ("class", class-dotted) or None, chasing one re-export hop at
        a time through package ``__init__`` alias tables.
        """
        if _depth > _MAX_REEXPORT_DEPTH:
            return None
        if dotted in self.modules:
            return ("module", dotted)
        mod_name = self.module_of(dotted)
        if mod_name is None:
            return None
        mod = self.modules[mod_name]
        attrs = dotted[len(mod_name) + 1:].split(".")
        head = attrs[0]
        if head in mod.functions and len(attrs) == 1:
            return ("func", mod.functions[head])
        if head in mod.classes:
            cls = mod.classes[head]
            if len(attrs) == 1:
                return ("class", cls.dotted)
            if len(attrs) == 2:
                meth = self.resolve_method(cls, attrs[1])
                if meth is not None:
                    return ("func", meth)
            return None
        if head in mod.aliases:
            target = mod.aliases[head]
            rest = attrs[1:]
            full = target + ("." + ".".join(rest) if rest else "")
            return self.resolve_symbol(full, _depth + 1)
        return None

    def resolve_method(self, cls: ClassInfo, name: str,
                       _seen: Optional[Set[str]] = None) -> Optional[str]:
        """Find ``name`` on ``cls`` or its repo base classes."""
        seen = _seen or set()
        if cls.dotted in seen:
            return None
        seen.add(cls.dotted)
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            base_cls = self.lookup_class(base, cls.module)
            if base_cls is not None:
                found = self.resolve_method(base_cls, name, seen)
                if found is not None:
                    return found
        return None

    def lookup_class(self, ref: str,
                     from_module: str) -> Optional[ClassInfo]:
        """Resolve a base-class reference from inside ``from_module``."""
        mod = self.modules.get(from_module)
        if mod is not None and ref in mod.classes:
            return mod.classes[ref]
        if mod is not None and ref in mod.aliases:
            ref = mod.aliases[ref]
        resolved = self.resolve_symbol(ref)
        if resolved is not None and resolved[0] == "class":
            return self.classes.get(resolved[1])
        return self.classes.get(ref)

    def class_is_slots_exempt(self, cls: ClassInfo,
                              _seen: Optional[Set[str]] = None) -> bool:
        """Exception/Enum/Protocol subclasses don't need __slots__."""
        seen = _seen or set()
        if cls.dotted in seen:
            return False
        seen.add(cls.dotted)
        for base in cls.bases:
            tail = base.rsplit(".", 1)[-1]
            if tail in SLOTS_EXEMPT_BASES:
                return True
            base_cls = self.lookup_class(base, cls.module)
            if base_cls is not None and \
                    self.class_is_slots_exempt(base_cls, seen):
                return True
        return False


# ---------------------------------------------------------------------------
# Parsing & symbol table construction
# ---------------------------------------------------------------------------

def _module_name(file: Path, root: Path, package: str) -> Tuple[str, bool]:
    rel = file.relative_to(root)
    parts = list(rel.with_suffix("").parts)
    is_package = parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    return ".".join([package] + parts), is_package


def _resolve_relative(module: ModuleInfo, node: ast.ImportFrom) -> str:
    """Absolute module path of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    parts = module.name.split(".")
    if not module.is_package:
        parts = parts[:-1]
    if node.level > 1:
        parts = parts[: len(parts) - (node.level - 1)]
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts)


def _dataclass_has_slots(node: ast.ClassDef) -> Tuple[bool, bool]:
    """(is_dataclass, slots=True present)."""
    is_dc = has_slots = False
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = (target.id if isinstance(target, ast.Name)
                else getattr(target, "attr", ""))
        if name == "dataclass":
            is_dc = True
            if isinstance(dec, ast.Call):
                for kw in dec.keywords:
                    if kw.arg == "slots" and \
                            isinstance(kw.value, ast.Constant) and \
                            kw.value.value is True:
                        has_slots = True
    return is_dc, has_slots


def _class_info(node: ast.ClassDef, module: ModuleInfo) -> ClassInfo:
    bases: List[str] = []
    for b in node.bases:
        parts: List[str] = []
        cur: ast.AST = b
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
            bases.append(".".join(reversed(parts)))
        elif isinstance(cur, ast.Subscript):   # Generic[T] etc.
            continue
    is_dc, dc_slots = _dataclass_has_slots(node)
    slots_body = any(
        isinstance(s, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__"
            for t in s.targets)
        for s in node.body)
    info = ClassInfo(
        name=node.name, module=module.name, lineno=node.lineno,
        bases=bases,
        has_slots=slots_body or (is_dc and dc_slots))
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = \
                f"{module.name}:{node.name}.{stmt.name}"
    return info


def build_program(package_root: Path,
                  repo_root: Optional[Path] = None,
                  package: Optional[str] = None) -> Program:
    """Parse every module under ``package_root`` into a :class:`Program`.

    ``repo_root`` controls the repo-relative paths recorded on
    violations (defaults to the parent of ``package_root``) so that
    fingerprints line up with ``lint_paths`` output.
    """
    package_root = Path(package_root).resolve()
    if repo_root is None:
        repo_root = package_root.parent
    else:
        repo_root = Path(repo_root).resolve()
    pkg = package or package_root.name
    program = Program(package=pkg)

    files = [f for f in sorted(package_root.rglob("*.py"))
             if "__pycache__" not in f.parts]
    fn_nodes: List[Tuple[ModuleInfo, Optional[ClassInfo], ast.AST]] = []

    for file in files:
        name, is_package = _module_name(file, package_root, pkg)
        source = file.read_text(encoding="utf-8")
        lines = source.splitlines()
        try:
            rel_path = file.relative_to(repo_root).as_posix()
        except ValueError:
            rel_path = file.as_posix()
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError:
            program.modules[name] = ModuleInfo(
                name=name, path=rel_path, is_package=is_package,
                tree=None, lines=lines)
            program.parse_failures.append(name)
            continue
        program.modules[name] = ModuleInfo(
            name=name, path=rel_path, is_package=is_package,
            tree=tree, lines=lines)

    # Pass 1: aliases, import edges, symbol tables.
    for mod in program.modules.values():
        if mod.tree is None:
            continue
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    mod.aliases[a.asname or a.name.split(".")[0]] = a.name
                    if a.name.split(".")[0] == pkg:
                        # ancestors are imported implicitly by the
                        # runtime; only the named module is an edge
                        mod.imports.setdefault(a.name, node.lineno)
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_relative(mod, node)
                if not base:
                    continue
                uses_facade = False
                for a in node.names:
                    target = f"{base}.{a.name}"
                    mod.aliases[a.asname or a.name] = target
                    if target in program.modules:
                        # ``from pkg import submodule``: the edge is
                        # to the submodule, not the package facade
                        mod.imports.setdefault(target, node.lineno)
                    else:
                        uses_facade = True
                if uses_facade and base.split(".")[0] == pkg:
                    mod.imports.setdefault(base, node.lineno)
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mod.functions[stmt.name] = f"{mod.name}:{stmt.name}"
                fn_nodes.append((mod, None, stmt))
            elif isinstance(stmt, ast.ClassDef):
                info = _class_info(stmt, mod)
                mod.classes[stmt.name] = info
                program.classes[info.dotted] = info
                for body_stmt in stmt.body:
                    if isinstance(body_stmt,
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn_nodes.append((mod, info, body_stmt))

    for info in program.classes.values():
        for meth_name, qual in info.methods.items():
            program.methods_by_name.setdefault(meth_name, []).append(qual)

    # Pass 2: per-function fact extraction.
    for mod, cls, node in fn_nodes:
        fn = _extract_function(program, mod, cls, node)
        program.functions[fn.qualname] = fn

    return program


# ---------------------------------------------------------------------------
# Per-function fact extraction
# ---------------------------------------------------------------------------

def _param_names(node) -> Set[str]:
    args = node.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    names.discard("self")
    names.discard("cls")
    return names


def _resolve_dotted(mod: ModuleInfo, node: ast.AST) -> Optional[str]:
    """Dotted path through the module's import aliases (cf. linter)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(mod.aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


class _FactVisitor:
    """Single walk over one function body collecting seed facts."""

    def __init__(self, program: Program, mod: ModuleInfo,
                 cls: Optional[ClassInfo], node, fn: FunctionInfo):
        self.program = program
        self.mod = mod
        self.cls = cls
        self.node = node
        self.fn = fn
        self.params = _param_names(node)
        self.is_init = fn.name in ("__init__", "__post_init__", "__new__")
        self.scratch: Set[str] = set()
        self.globals_declared: Set[str] = set()
        self._collect_locals()

    # -- local classification ----------------------------------------------

    def _is_fresh_value(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.Tuple,
                              ast.ListComp, ast.SetComp, ast.DictComp,
                              ast.GeneratorExp, ast.Constant,
                              ast.JoinedStr)):
            return True
        if isinstance(value, ast.Call):
            if isinstance(value.func, ast.Name) and \
                    value.func.id in FRESH_BUILTINS:
                return True
            resolved = self._resolve_call_target(value)
            if resolved is not None and resolved[0] == "class":
                return True     # a constructed object is fresh state
        return False

    def _collect_locals(self) -> None:
        for n in ast.walk(self.node):
            if isinstance(n, ast.Global) or isinstance(n, ast.Nonlocal):
                self.globals_declared.update(n.names)
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(n, ast.Assign):
                targets, value = list(n.targets), n.value
            elif isinstance(n, ast.AnnAssign) and n.value is not None:
                targets, value = [n.target], n.value
            if value is None or not self._is_fresh_value(value):
                continue
            for t in targets:
                if isinstance(t, ast.Name):
                    self.scratch.add(t.id)

    def _root_of(self, node: ast.AST) -> str:
        """SELF/SCRATCH/PARAM/OTHER/FRESH for an expression's base."""
        while isinstance(node, (ast.Attribute, ast.Subscript,
                                ast.Starred)):
            node = node.value
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls"):
                return SELF
            if node.id in self.globals_declared:
                return OTHER
            if node.id in self.scratch:
                return SCRATCH
            if node.id in self.params:
                return PARAM
            return OTHER
        if isinstance(node, ast.Constant):
            return FRESH
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.Tuple,
                             ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp, ast.JoinedStr)):
            return FRESH
        if isinstance(node, ast.Call) and self._is_fresh_value(node):
            return FRESH
        return OTHER

    # -- mutation recording --------------------------------------------------

    def _record_mutation(self, root: str, line: int, desc: str) -> None:
        if root in (SCRATCH, FRESH):
            return
        if root == SELF:
            if self.is_init:
                return             # constructing a fresh object
            kind = "self"
        elif root == PARAM:
            kind = "args"
        else:
            kind = "global"
        self.fn.mutations.setdefault(
            kind, MutationSite(line=line, desc=desc))

    def _target_desc(self, node: ast.AST) -> str:
        try:
            return ast.unparse(node)
        except Exception:
            return "<expr>"

    # -- call resolution -----------------------------------------------------

    def _resolve_call_target(
            self, call: ast.Call) -> Optional[Tuple[str, str]]:
        """("func"|"class", qualname/dotted) for precisely resolvable
        callees — *not* dynamic by-name candidates."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.scratch:
                return None
            if name in self.mod.functions:
                return ("func", self.mod.functions[name])
            if name in self.mod.classes:
                return ("class", self.mod.classes[name].dotted)
            if name in self.mod.aliases:
                return self.program.resolve_symbol(self.mod.aliases[name])
            return None
        if isinstance(func, ast.Attribute):
            # super().__init__(...) and friends
            if isinstance(func.value, ast.Call) and \
                    isinstance(func.value.func, ast.Name) and \
                    func.value.func.id == "super" and self.cls is not None:
                for base in self.cls.bases:
                    base_cls = self.program.lookup_class(
                        base, self.mod.name)
                    if base_cls is not None:
                        meth = self.program.resolve_method(
                            base_cls, func.attr)
                        if meth is not None:
                            return ("func", meth)
                return None
            full = _resolve_dotted(self.mod, func)
            if full is not None:
                resolved = self.program.resolve_symbol(full)
                if resolved is not None and resolved[0] != "module":
                    return resolved
            # self.method() through the class and its repo bases
            base_expr = func.value
            if isinstance(base_expr, ast.Name) and \
                    base_expr.id in ("self", "cls") and \
                    self.cls is not None:
                meth = self.program.resolve_method(self.cls, func.attr)
                if meth is not None:
                    return ("func", meth)
        return None

    def _arg_roots(self, call: ast.Call) -> Tuple[str, ...]:
        roots = []
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            roots.append(self._root_of(arg))
        return tuple(roots)

    def _visit_call(self, call: ast.Call) -> None:
        mod = self.mod
        fn = self.fn
        line = call.lineno

        # entropy seed (pragma-sanctioned sites are skipped by the
        # analyzer later, which owns the pragma maps)
        full = _resolve_dotted(mod, call.func)
        if full is not None and is_entropy_call(full):
            fn.entropy_sites.append((line, full))

        resolved = self._resolve_call_target(call)
        if resolved is not None:
            kind, target = resolved
            receiver = None
            if isinstance(call.func, ast.Attribute):
                receiver = self._root_of(call.func.value)
            if kind == "class":
                fn.allocations.append(AllocSite(line=line, cls=target))
                cls_info = self.program.classes.get(target)
                if cls_info is not None:
                    init = self.program.resolve_method(
                        cls_info, "__init__")
                    if init is not None:
                        fn.calls.append(CallSite(
                            line=line, callee=init, kind="direct",
                            receiver_root=FRESH,
                            arg_roots=self._arg_roots(call)))
            else:
                fn.calls.append(CallSite(
                    line=line, callee=target, kind="direct",
                    receiver_root=receiver,
                    arg_roots=self._arg_roots(call)))
            return

        if not isinstance(call.func, ast.Attribute):
            return
        attr = call.func.attr
        receiver = self._root_of(call.func.value)
        if attr in BUILTIN_MUTATORS:
            # Python container semantics: assume receiver mutation.
            self._record_mutation(
                receiver, line,
                f"calls .{attr}() on "
                f"{self._target_desc(call.func.value)}")
            return
        if attr in DYNAMIC_NAME_SKIP:
            return
        candidates = self.program.methods_by_name.get(attr, [])
        if not candidates or len(candidates) > _MAX_DYNAMIC_CANDIDATES:
            return
        unique = len(candidates) == 1
        for target in candidates:
            fn.calls.append(CallSite(
                line=line, callee=target, kind="dynamic", unique=unique,
                receiver_root=receiver,
                arg_roots=self._arg_roots(call)))

    # -- the walk ------------------------------------------------------------

    def run(self) -> None:
        for n in ast.walk(self.node):
            if isinstance(n, ast.Call):
                self._visit_call(n)
            elif isinstance(n, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (n.targets if isinstance(n, ast.Assign)
                           else [n.target])
                for t in targets:
                    self._visit_store(t)
            elif isinstance(n, ast.Delete):
                for t in n.targets:
                    self._visit_store(t)

    def _visit_store(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._visit_store(elt)
            return
        if isinstance(target, ast.Attribute):
            self._record_mutation(
                self._root_of(target), target.lineno,
                f"assigns {self._target_desc(target)}")
        elif isinstance(target, ast.Subscript):
            self._record_mutation(
                self._root_of(target), target.lineno,
                f"writes {self._target_desc(target)}")
        elif isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self._record_mutation(
                    OTHER, getattr(target, "lineno", 1),
                    f"rebinds global {target.id}")


def _extract_function(program: Program, mod: ModuleInfo,
                      cls: Optional[ClassInfo], node) -> FunctionInfo:
    qual = (f"{mod.name}:{cls.name}.{node.name}" if cls is not None
            else f"{mod.name}:{node.name}")
    fn = FunctionInfo(
        qualname=qual, module=mod.name, name=node.name,
        cls=cls.name if cls is not None else None, lineno=node.lineno)
    _FactVisitor(program, mod, cls, node, fn).run()
    return fn


# ---------------------------------------------------------------------------
# Interprocedural fixpoint
# ---------------------------------------------------------------------------

@dataclass
class _Witness:
    """Why a propagated fact holds: a direct site or a call edge."""

    line: int
    desc: str
    via: Optional[str] = None     # callee qualname the fact came through


@dataclass
class ProgramResult:
    program: Program
    manifest: Manifest
    violations: List[Violation] = field(default_factory=list)
    entropy: Dict[str, _Witness] = field(default_factory=dict)
    impure: Dict[str, Dict[str, _Witness]] = field(default_factory=dict)
    hot: Dict[str, Optional[Tuple[str, int]]] = field(default_factory=dict)


def _propagate_entropy(result: ProgramResult) -> None:
    program = result.program
    entropy = result.entropy
    callers: Dict[str, List[Tuple[str, CallSite]]] = {}
    for fn in program.functions.values():
        for site in fn.calls:
            if site.kind == "direct" or site.unique:
                callers.setdefault(site.callee, []).append(
                    (fn.qualname, site))
    work: List[str] = []
    for fn in program.functions.values():
        if fn.entropy_sites:
            line, sink = fn.entropy_sites[0]
            entropy[fn.qualname] = _Witness(line=line, desc=f"{sink}()")
            work.append(fn.qualname)
    while work:
        callee = work.pop()
        for caller, site in callers.get(callee, ()):
            if caller in entropy:
                continue
            entropy[caller] = _Witness(
                line=site.line, desc="", via=callee)
            work.append(caller)


_MUT_KINDS = ("self", "args", "global")


def _propagate_impurity(result: ProgramResult) -> None:
    """Fixpoint over mutates-{self,args,global} facts, every edge."""
    program = result.program
    impure = result.impure
    callers: Dict[str, List[Tuple[str, CallSite]]] = {}
    work: List[str] = []
    for fn in program.functions.values():
        for site in fn.calls:
            callers.setdefault(site.callee, []).append(
                (fn.qualname, site))
        if fn.mutations:
            impure[fn.qualname] = {
                kind: _Witness(line=m.line, desc=m.desc)
                for kind, m in fn.mutations.items()}
            work.append(fn.qualname)

    def add(qual: str, kind: str, witness: _Witness) -> bool:
        facts = impure.setdefault(qual, {})
        if kind in facts:
            return False
        facts[kind] = witness
        return True

    while work:
        callee = work.pop()
        facts = impure.get(callee, {})
        for caller, site in callers.get(callee, ()):
            changed = False
            w = _Witness(line=site.line, desc="", via=callee)
            if "global" in facts:
                changed |= add(caller, "global", w)
            if "self" in facts and site.receiver_root is not None:
                root = site.receiver_root
                if root == SELF:
                    changed |= add(caller, "self", w)
                elif root == PARAM:
                    changed |= add(caller, "args", w)
                elif root == OTHER:
                    changed |= add(caller, "global", w)
            if "args" in facts:
                roots = set(site.arg_roots)
                if SELF in roots:
                    changed |= add(caller, "self", w)
                if PARAM in roots:
                    changed |= add(caller, "args", w)
                if OTHER in roots:
                    changed |= add(caller, "global", w)
            if changed:
                work.append(caller)


def _compute_hot(result: ProgramResult) -> None:
    """Forward reachability from the manifest's dispatch entries."""
    program = result.program
    hot = result.hot
    work: List[str] = []
    for entry in result.manifest.hot_entries:
        if entry in program.functions:
            hot[entry] = None
            work.append(entry)
    while work:
        qual = work.pop()
        fn = program.functions[qual]
        for site in fn.calls:
            if site.kind == "dynamic" and not site.unique:
                continue
            if site.callee in hot or site.callee not in program.functions:
                continue
            hot[site.callee] = (qual, site.line)
            work.append(site.callee)


# ---------------------------------------------------------------------------
# Chains (for messages)
# ---------------------------------------------------------------------------

def _entropy_chain(result: ProgramResult, qual: str) -> str:
    parts = [_short(qual)]
    seen = {qual}
    cur = qual
    while True:
        w = result.entropy.get(cur)
        if w is None:
            break
        if w.via is None or w.via in seen:
            mod = result.program.functions[cur].module
            path = result.program.modules[mod].path
            parts.append(f"{w.desc} ({path}:{w.line})")
            break
        seen.add(w.via)
        parts.append(_short(w.via))
        cur = w.via
    return " -> ".join(parts)


def _impurity_chain(result: ProgramResult, qual: str, kind: str) -> str:
    parts = [_short(qual)]
    seen = {qual}
    cur, cur_kind = qual, kind
    while True:
        facts = result.impure.get(cur, {})
        w = facts.get(cur_kind) or next(iter(facts.values()), None)
        if w is None:
            break
        if w.via is None or w.via in seen:
            mod = result.program.functions[cur].module
            path = result.program.modules[mod].path
            parts.append(f"{w.desc} ({path}:{w.line})")
            break
        seen.add(w.via)
        parts.append(_short(w.via))
        cur = w.via
        cur_kind = next(iter(result.impure.get(cur, {"": None})))
    return " -> ".join(parts)


def _hot_chain(result: ProgramResult, qual: str) -> str:
    parts = [_short(qual)]
    cur = qual
    seen = {qual}
    while True:
        parent = result.hot.get(cur)
        if parent is None:
            break
        prev, _line = parent
        if prev in seen:
            break
        parts.append(_short(prev))
        seen.add(prev)
        cur = prev
    return " <- ".join(parts)


def _short(qual: str) -> str:
    mod, _, name = qual.partition(":")
    return f"{mod.split('.', 1)[-1]}.{name}" if name else mod


# ---------------------------------------------------------------------------
# Rule evaluation
# ---------------------------------------------------------------------------

def _make_violation(result: ProgramResult, rule_id: str, module: str,
                    line: int, message: str) -> Violation:
    mod = result.program.modules[module]
    src = mod.lines[line - 1] if 1 <= line <= len(mod.lines) else ""
    return Violation(rule=rule_by_id(rule_id), path=mod.path,
                     line=line, col=0, message=message, source_line=src)


def _check_layering(result: ProgramResult) -> None:
    program, manifest = result.program, result.manifest
    for mod in program.modules.values():
        for target, line in sorted(mod.imports.items()):
            if target not in program.modules or target == mod.name:
                continue
            if manifest.import_allowed(mod.name, target):
                continue
            src_layer = manifest.layer_of(mod.name)
            dst_layer = manifest.layer_of(target)
            allowed = ()
            if src_layer in manifest.layers:
                allowed = manifest.layers[src_layer].allowed
            result.violations.append(_make_violation(
                result, "SIM015", mod.name, line,
                f"{mod.name} (layer '{src_layer}') imports {target} "
                f"(layer '{dst_layer}'), which the architecture DAG "
                f"forbids (allowed: "
                f"{', '.join(allowed) if allowed else 'nothing'}); "
                f"move the dependency below the boundary or add a "
                f"named friend exemption in "
                f"repro/analysis/architecture.py"))
    # cycles: Tarjan over the intra-package import graph
    for scc in _strongly_connected(program):
        if len(scc) < 2:
            mod = program.modules[scc[0]]
            if scc[0] not in mod.imports:
                continue
        cycle = sorted(scc)
        anchor = program.modules[cycle[0]]
        nxt = next((m for m in cycle[1:] if m in anchor.imports),
                   cycle[0])
        line = anchor.imports.get(nxt, 1)
        result.violations.append(_make_violation(
            result, "SIM015", cycle[0], line,
            f"import cycle between modules: {' -> '.join(cycle)} -> "
            f"{cycle[0]}; the module graph must stay a DAG"))


def _strongly_connected(program: Program) -> List[List[str]]:
    """Tarjan's SCC over intra-package import edges."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    out: List[List[str]] = []
    counter = [0]

    def edges(m: str) -> Iterable[str]:
        return (t for t in program.modules[m].imports
                if t in program.modules and t != m)

    def strongconnect(v: str) -> None:
        # iterative Tarjan to survive deep graphs
        work = [(v, iter(edges(v)))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(edges(w))))
                    advanced = True
                    break
                elif w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                out.append(comp)

    for v in sorted(program.modules):
        if v not in index:
            strongconnect(v)
    return [c for c in out if len(c) > 1]


def _check_transitive_entropy(result: ProgramResult) -> None:
    for qual, fn in sorted(result.program.functions.items()):
        if qual not in result.entropy:
            continue
        if fn.entropy_sites:
            continue        # direct sites are SIM001's turf
        w = result.entropy[qual]
        chain = _entropy_chain(result, qual)
        result.violations.append(_make_violation(
            result, "SIM016", fn.module, w.line,
            f"{_short(qual)}() reaches host wall-clock/entropy through "
            f"the call chain {chain}; use sim.now / a seeded "
            f"random.Random, or sanction the sink itself with "
            f"# simlint: ignore[SIM001]"))


def _call_is_impure(result: ProgramResult,
                    site: CallSite) -> Optional[str]:
    """Mutation kind this call inflicts on non-scratch state, or None."""
    facts = result.impure.get(site.callee)
    if not facts:
        return None
    if "global" in facts:
        return "global"
    if "self" in facts and site.receiver_root in (PARAM, OTHER, SELF):
        return "self"
    if "args" in facts and any(
            r in (PARAM, OTHER, SELF) for r in site.arg_roots):
        return "args"
    return None


def _check_module_purity(result: ProgramResult, modules: Set[str],
                         rule_id: str, noun: str, remedy: str) -> None:
    """Shared purity pass: every function in ``modules`` must avoid
    calls inferred to mutate non-scratch state (SIM017's machinery,
    parameterized so SIM019 can hold the attribution observers to the
    same contract)."""
    reported: Set[Tuple[str, int, str]] = set()
    for qual, fn in sorted(result.program.functions.items()):
        if fn.module not in modules:
            continue
        for site in fn.calls:
            if site.kind == "dynamic" and not site.unique:
                # equivocal by-name edges feed the summaries but are
                # too noisy to anchor a violation (a dict's .get()
                # would match every repo class named get)
                continue
            kind = _call_is_impure(result, site)
            if kind is None:
                continue
            key = (fn.qualname, site.line, site.callee)
            if key in reported:
                continue
            reported.add(key)
            chain = _impurity_chain(result, site.callee, kind)
            what = {"self": "its receiver", "args": "its arguments",
                    "global": "global state"}[kind]
            result.violations.append(_make_violation(
                result, rule_id, fn.module, site.line,
                f"{noun} {_short(qual)}() calls "
                f"{_short(site.callee)}(), inferred to mutate {what} "
                f"({chain}); {remedy}"))


def _check_oracle_purity(result: ProgramResult) -> None:
    _check_module_purity(
        result, set(result.manifest.oracle_modules), "SIM017", "oracle",
        "oracles must be pure observers — read attributes and return "
        "Violations, or move the mutation into the executor")


def _check_attribution_purity(result: ProgramResult) -> None:
    _check_module_purity(
        result, set(result.manifest.attribution_modules), "SIM019",
        "attribution observer",
        "latency attribution must never mutate simulation state — "
        "fold recorded spans into fresh local structures and return "
        "them")


def _check_hot_allocations(result: ProgramResult) -> None:
    program = result.program
    reported: Set[Tuple[str, int, str]] = set()
    for qual in sorted(result.hot):
        fn = program.functions.get(qual)
        if fn is None:
            continue
        for alloc in fn.allocations:
            cls = program.classes.get(alloc.cls)
            if cls is None or cls.has_slots:
                continue
            if program.class_is_slots_exempt(cls):
                continue
            key = (fn.module, alloc.line, alloc.cls)
            if key in reported:
                continue
            reported.add(key)
            chain = _hot_chain(result, qual)
            result.violations.append(_make_violation(
                result, "SIM018", fn.module, alloc.line,
                f"{cls.name} (no __slots__) allocated in "
                f"{_short(qual)}(), reachable from the per-event "
                f"dispatch ({chain}); declare __slots__ / "
                f"dataclass(slots=True) or move the allocation off "
                f"the hot path"))


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def analyze_program(program: Program,
                    manifest: Optional[Manifest] = None) -> ProgramResult:
    manifest = manifest or default_manifest()
    result = ProgramResult(program=program, manifest=manifest)
    _sanction_pragma_sites(program)
    _propagate_entropy(result)
    _propagate_impurity(result)
    _compute_hot(result)
    _check_layering(result)
    _check_transitive_entropy(result)
    _check_oracle_purity(result)
    _check_attribution_purity(result)
    _check_hot_allocations(result)
    if manifest.frozen_modules:
        frozen_paths = {
            mod.path for mod in program.modules.values()
            if mod.name in manifest.frozen_modules
        }
        result.violations = [v for v in result.violations
                             if v.path not in frozen_paths]
    result.violations.sort(
        key=lambda v: (v.path, v.line, v.rule.id, v.message))
    return result


def _sanction_pragma_sites(program: Program) -> None:
    """Drop entropy seeds whose site carries a SIM001/SIM016 pragma.

    A pragma-sanctioned wall-clock read (host-side progress meters in
    the bench runner) is a declared boundary: it must not taint its
    transitive callers.
    """
    for fn in program.functions.values():
        if not fn.entropy_sites:
            continue
        mod = program.modules[fn.module]
        pragmas = _pragma_map(mod.lines)
        kept = []
        for line, sink in fn.entropy_sites:
            ids = pragmas.get(line, "missing")
            if ids == "missing":
                kept.append((line, sink))
                continue
            if ids is None or {"SIM001", "SIM016"} & ids:
                continue
            kept.append((line, sink))
        fn.entropy_sites = kept


def lint_program(package_root: Path,
                 manifest: Optional[Manifest] = None,
                 enabled: Optional[Iterable[str]] = None,
                 repo_root: Optional[Path] = None) -> List[Violation]:
    """Run the whole-program pass; returns un-suppressed violations."""
    program = build_program(Path(package_root), repo_root=repo_root)
    result = analyze_program(program, manifest)
    enabled_set = set(enabled) if enabled is not None else \
        {r.id for r in RULES}
    kept: List[Violation] = []
    pragma_cache: Dict[str, Dict] = {}
    by_path = {m.path: m for m in program.modules.values()}
    for v in result.violations:
        if v.rule.id not in enabled_set:
            continue
        mod = by_path.get(v.path)
        if mod is not None:
            if any(_SKIP_FILE_RE.search(line)
                   for line in mod.lines[:10]):
                continue
            if v.path not in pragma_cache:
                pragma_cache[v.path] = _pragma_map(mod.lines)
            if _suppressed(v, pragma_cache[v.path]):
                continue
        kept.append(v)
    return kept


# ---------------------------------------------------------------------------
# Graph export
# ---------------------------------------------------------------------------

def export_dot(program: Program,
               manifest: Optional[Manifest] = None) -> str:
    """The layer DAG as Graphviz dot (aggregated per layer).

    Nodes are layers (with module counts); edges aggregate the real
    module-level import edges.  Friend-edge traffic is drawn dashed.
    """
    manifest = manifest or default_manifest()
    per_layer: Dict[str, int] = {}
    edges: Dict[Tuple[str, str], int] = {}
    friend_edges: Dict[Tuple[str, str], int] = {}
    for mod in program.modules.values():
        src_layer = manifest.layer_of(mod.name)
        if src_layer is None:
            continue
        per_layer[src_layer] = per_layer.get(src_layer, 0) + 1
        for target in mod.imports:
            if target not in program.modules:
                continue
            dst_layer = manifest.layer_of(target)
            if dst_layer is None or dst_layer == src_layer:
                continue
            key = (src_layer, dst_layer)
            layer = manifest.layers.get(src_layer, _EMPTY_LAYER)
            if manifest.friend_for(mod.name, target) is not None and \
                    dst_layer not in layer.allowed:
                friend_edges[key] = friend_edges.get(key, 0) + 1
            else:
                edges[key] = edges.get(key, 0) + 1
    out = [
        "digraph layers {",
        "  rankdir=BT;",
        "  node [shape=box, fontname=\"Helvetica\"];",
    ]
    for layer in sorted(per_layer):
        out.append(
            f'  "{layer}" [label="{layer}\\n'
            f'{per_layer[layer]} modules"];')
    for (src, dst), n in sorted(edges.items()):
        out.append(f'  "{src}" -> "{dst}" [label="{n}"];')
    for (src, dst), n in sorted(friend_edges.items()):
        out.append(
            f'  "{src}" -> "{dst}" '
            f'[label="{n} (friend)", style=dashed];')
    out.append("}")
    return "\n".join(out)


def export_json(program: Program,
                manifest: Optional[Manifest] = None) -> str:
    """Full module-level graph + layer assignment as JSON."""
    manifest = manifest or default_manifest()
    modules = {}
    for mod in sorted(program.modules.values(), key=lambda m: m.name):
        modules[mod.name] = {
            "path": mod.path,
            "layer": manifest.layer_of(mod.name),
            "imports": sorted(t for t in mod.imports
                              if t in program.modules),
        }
    return json.dumps({
        "package": program.package,
        "modules": modules,
        "functions": len(program.functions),
        "classes": len(program.classes),
        "layers": {
            name: {"allowed": list(layer.allowed), "doc": layer.doc}
            for name, layer in sorted(manifest.layers.items())},
        "friends": [
            {"importer": f.importer, "imported": f.imported_prefix,
             "why": f.why}
            for f in manifest.friends],
        "hot_entries": list(manifest.hot_entries),
        "frozen_modules": list(manifest.frozen_modules),
    }, indent=2, sort_keys=False)
