"""Unit tests for the fio driver itself."""

import pytest

from repro import GiB, Machine
from repro.apps.fio import FioJob, run_fio


def machine():
    return Machine(capacity_bytes=2 * GiB, memory_bytes=256 << 20,
                   capture_data=False)


class TestJobValidation:
    def test_bad_rw(self):
        with pytest.raises(ValueError):
            FioJob(rw="randrw")

    def test_unaligned_block(self):
        with pytest.raises(ValueError):
            FioJob(block_size=100)

    def test_block_bigger_than_file(self):
        with pytest.raises(ValueError):
            FioJob(block_size=1 << 20, file_size=4096)

    def test_flags(self):
        assert FioJob(rw="randwrite").is_write
        assert FioJob(rw="randread").is_random
        assert not FioJob(rw="read").is_random


class TestRun:
    def test_op_count_respected(self):
        m = machine()
        job = FioJob(engine="bypassd", rw="randread", block_size=4096,
                     file_size=8 << 20, threads=2, ops_per_thread=25)
        r = run_fio(m, job)
        assert r.latency.count == 50
        assert r.throughput.ops == 50

    def test_sequential_offsets_cycle(self):
        m = machine()
        job = FioJob(engine="sync", rw="read", block_size=4096,
                     file_size=64 * 1024, ops_per_thread=40)
        r = run_fio(m, job)   # 16 blocks, wraps around
        assert r.latency.count == 40

    def test_deterministic_given_seed(self):
        def once():
            m = machine()
            job = FioJob(engine="bypassd", rw="randread",
                         block_size=4096, file_size=8 << 20,
                         ops_per_thread=30, seed=99)
            return run_fio(m, job).latency.samples

        assert once() == once()

    def test_per_process_stats_populated(self):
        m = machine()
        job = FioJob(engine="sync", rw="randwrite", block_size=4096,
                     file_size=4 << 20, processes=3, ops_per_thread=20)
        r = run_fio(m, job)
        assert len(r.per_process_gbps) == 3
        assert len(r.per_process_lat_us) == 3
        assert all(v > 0 for v in r.per_process_gbps)

    def test_throughput_units_consistent(self):
        m = machine()
        job = FioJob(engine="spdk", rw="randread", block_size=4096,
                     file_size=8 << 20, ops_per_thread=50)
        r = run_fio(m, job)
        assert r.mbps == pytest.approx(r.gbps * 1000)
        assert r.iops == pytest.approx(r.gbps * 1e9 / 4096)

    def test_write_job_on_bypassd_stays_direct(self):
        m = machine()
        job = FioJob(engine="bypassd", rw="randwrite", block_size=4096,
                     file_size=8 << 20, ops_per_thread=30)
        r = run_fio(m, job)
        # Overwrites of a fallocated file never touch the kernel,
        # so mean latency stays near the device write latency.
        assert r.mean_lat_us < 5.0

    def test_ramp_ops_excluded(self):
        m = machine()
        job = FioJob(engine="sync", rw="randread", block_size=4096,
                     file_size=8 << 20, ops_per_thread=10, ramp_ops=5)
        r = run_fio(m, job)
        assert r.latency.count == 10
