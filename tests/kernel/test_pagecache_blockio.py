"""Unit tests for the page cache and the kernel block layer."""

import pytest

from repro import GiB, Machine
from repro.kernel.process import O_CREAT, O_RDWR
from repro.nvme.spec import Opcode


@pytest.fixture
def m():
    return Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                   page_cache_pages=8)


def make_file(m, path="/f", blocks=32):
    proc = m.spawn_process()
    t = proc.new_thread()

    def body():
        fd = yield from m.kernel.sys_open(proc, t, path,
                                          O_RDWR | O_CREAT)
        yield from m.kernel.sys_fallocate(proc, t, fd, 0, blocks * 4096)
        return fd

    fd = m.run_process(body())
    return proc, t, fd


class TestPageCache:
    def test_hit_after_miss(self, m):
        proc, t, fd = make_file(m)
        inode = m.fs.lookup("/f")

        def body():
            yield from m.pagecache.read_page(t, inode, 0)
            yield from m.pagecache.read_page(t, inode, 0)

        m.run_process(body())
        assert m.pagecache.hits == 1
        assert m.pagecache.misses == 1

    def test_lru_eviction(self, m):
        proc, t, fd = make_file(m)
        inode = m.fs.lookup("/f")

        def body():
            for i in range(12):  # capacity is 8
                yield from m.pagecache.read_page(t, inode, i)
            # Page 0 evicted: reading it again misses.
            before = m.pagecache.misses
            yield from m.pagecache.read_page(t, inode, 0)
            return m.pagecache.misses - before

        assert m.run_process(body()) == 1
        assert m.pagecache.cached_pages <= 8

    def test_dirty_writeback_on_eviction(self, m):
        proc, t, fd = make_file(m)
        inode = m.fs.lookup("/f")

        def body():
            yield from m.pagecache.write_page(t, inode, 0,
                                              b"W" * 4096)
            for i in range(1, 12):
                yield from m.pagecache.read_page(t, inode, i)
            # Page 0 was evicted dirty -> written back to the device.
            return m.pagecache.writebacks

        assert m.run_process(body()) >= 1
        phys = m.fs.bmap(inode, 0)[0]
        assert m.device.backend.read_blocks(phys * 8, 8) == b"W" * 4096

    def test_sync_inode_writes_all_dirty(self, m):
        proc, t, fd = make_file(m)
        inode = m.fs.lookup("/f")

        def body():
            for i in range(4):
                yield from m.pagecache.write_page(t, inode, i,
                                                  bytes([i]) * 4096)
            yield from m.pagecache.sync_inode(t, inode)
            return m.pagecache.writebacks

        assert m.run_process(body()) == 4

    def test_invalidate_inode(self, m):
        proc, t, fd = make_file(m)
        inode = m.fs.lookup("/f")

        def body():
            yield from m.pagecache.read_page(t, inode, 0)

        m.run_process(body())
        m.pagecache.invalidate_inode(inode.ino)
        assert m.pagecache.cached_pages == 0

    def test_hole_reads_zero(self, m):
        proc = m.spawn_process()
        t = proc.new_thread()

        def body():
            fd = yield from m.kernel.sys_open(proc, t, "/sparse",
                                              O_RDWR | O_CREAT)
            inode = m.fs.lookup("/sparse")
            page = yield from m.pagecache.read_page(t, inode, 5)
            return page

        assert m.run_process(body()) == bytes(4096)


class TestBlockIO:
    def test_per_thread_queues(self, m):
        proc = m.spawn_process()
        t1, t2 = proc.new_thread(), proc.new_thread()

        def body():
            yield from m.blockio.rw_fsblocks(
                t1, Opcode.READ, m.fs.sb.first_data_block, 1)
            t1.release_core()
            yield from m.blockio.rw_fsblocks(
                t2, Opcode.READ, m.fs.sb.first_data_block, 1)
            t2.release_core()

        m.run_process(body())
        assert len(m.blockio._queues) == 2

    def test_layer_costs_charged(self, m):
        proc = m.spawn_process()
        t = proc.new_thread()

        def body():
            t0 = m.now
            yield from m.blockio.rw_fsblocks(
                t, Opcode.READ, m.fs.sb.first_data_block, 1)
            return m.now - t0

        elapsed = m.run_process(body())
        expected = (m.params.block_layer_ns + m.params.nvme_driver_ns
                    + m.params.device_read_ns(4096))
        assert abs(elapsed - expected) <= 20

    def test_io_error_raised(self, m):
        from repro.kernel.blockio import IOError_
        proc = m.spawn_process()
        t = proc.new_thread()

        def body():
            yield from m.blockio.rw_bytes(
                t, Opcode.READ, 10**12, 512)

        with pytest.raises(IOError_):
            m.run_process(body())

    def test_flush(self, m):
        proc = m.spawn_process()
        t = proc.new_thread()

        def body():
            t0 = m.now
            yield from m.blockio.flush(t)
            return m.now - t0

        assert m.run_process(body()) >= m.params.flush_ns
