"""The pre-overhaul discrete-event engine, frozen as a test oracle.

This is a verbatim copy of ``sim/engine.py`` as it stood before the
hot-path overhaul (bucketed calendar queue, event pooling, fast-path
dispatch).  It exists **only** so the differential-timeline harness
(``tests/sim/test_engine_diff.py``) can run the same workloads on both
engines and assert that span-tree fingerprints, final ``sim_time_ns``
and telemetry dumps are byte-identical — the proof that the overhaul
changed *nothing* observable.

Select it at import time with ``REPRO_ENGINE=reference`` in the
environment: ``repro.sim.engine`` then re-exports these classes, so
the whole stack (machine, apps, chaos executor) runs on the single
``heapq`` loop below.  Do not import this module from model code.

Known deficiencies, kept on purpose (the overhaul fixes them and the
regression tests in ``tests/sim/test_engine_fixes.py`` document the
difference):

- ``AnyOf`` leaves its ``_check`` callback registered on the losing
  events after the condition triggers, which the sanitizer reports as
  leaked events.
- ``Process.interrupt`` only detaches ``_resume`` from the event the
  process was waiting on *at call time*; a process that starts waiting
  between the call and the poke delivery keeps a stale ``_resume``
  registration (a later trigger double-steps the generator).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "Simulator",
]


class SimulationError(Exception):
    """Raised for misuse of the engine (e.g. re-triggering an event)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Carries an arbitrary ``cause`` describing why the process was
    interrupted (e.g. access revocation racing an in-flight I/O).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence at a point in simulated time.

    An event is *triggered* once `succeed` or `fail` is called; the
    simulator then runs its callbacks (resuming any waiting processes)
    at the current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered",
                 "_defused", "_observer", "__weakref__")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._defused = False
        self._observer = False
        if sim._san is not None:
            sim._san.note_event_created(self)

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        return self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._post(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._triggered = True
        self._exc = exc
        self.sim._post(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately at the current time.
            fn(self)
        else:
            self.callbacks.append(fn)


class Timeout(Event):
    """An event that triggers ``delay`` nanoseconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = int(delay)
        self._triggered = True
        self._value = value
        sim._post(self, delay=self.delay)


ProcessGen = Generator[Event, Any, Any]


class Process(Event):
    """An event representing a running generator.

    The process triggers (with the generator's return value) when the
    generator finishes, or fails with the escaping exception.
    """

    __slots__ = ("gen", "name", "daemon", "observer", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "",
                 daemon: bool = False, observer: bool = False):
        if not hasattr(gen, "send"):
            raise SimulationError(f"process target must be a generator, got {gen!r}")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        # Daemon processes are perpetual servers (device channels,
        # poller threads): the sanitizer exempts them from stranded/
        # leak verdicts and treats their scheduling order as immaterial.
        self.daemon = daemon
        # Observer processes (telemetry samplers) may only read model
        # state and yield timeouts: every event they schedule is tagged,
        # and `run()` stops once *only* observer events remain, so a
        # periodic sampler neither deadlocks the run nor extends it.
        self.observer = observer
        self._waiting_on: Optional[Event] = None
        if sim._san is not None:
            sim._san.note_process_created(self)
        bootstrap = Event(sim)
        if observer:
            bootstrap._observer = True
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        poke = Event(self.sim)
        poke.add_callback(lambda ev: self._step(throw=Interrupt(cause)))
        poke.succeed()

    # -- internal ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._exc is not None:
            event._defused = True
            self._step(throw=event._exc)
        else:
            self._step(send=event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        if self._triggered:
            return
        self.sim._active_process = self
        try:
            if throw is not None:
                target = self.gen.throw(throw)
            else:
                target = self.gen.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event objects"
                )
            )
            return
        if target.sim is not self.sim:
            self.fail(SimulationError("event belongs to a different simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class Condition(Event):
    """Base for composite events over several sub-events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict:
        # Only *processed* events count: a pending Timeout is "triggered"
        # from birth but has not occurred yet.
        return {
            i: ev._value
            for i, ev in enumerate(self.events)
            if ev.processed and ev._exc is None
        }


class AllOf(Condition):
    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
            return
        self.succeed(self._collect())


class Simulator:
    """The event loop: a priority queue of (time, seq, event).

    ``sanitize=True`` attaches a :class:`repro.sim.sanitizer.Sanitizer`
    that records event provenance and reports ordering races, stranded
    processes, and leaked events/resources at the end of a run (see
    ``docs/static_analysis.md``).  ``strict_sanitize=True`` additionally
    raises :class:`repro.sim.sanitizer.SanitizerError` from :meth:`run`
    when leak-class findings exist.  With sanitize off (the default)
    the hot paths only pay a ``is not None`` check and simulated
    timelines are byte-identical.
    """

    def __init__(self, sanitize: bool = False,
                 strict_sanitize: bool = False):
        self.now: int = 0
        self._queue: List = []
        self._seq = 0
        self._observers_queued = 0
        self._active_process: Optional[Process] = None
        self._san = None
        if sanitize or strict_sanitize:
            from .sanitizer import Sanitizer
            self._san = Sanitizer(self, strict=strict_sanitize)

    @property
    def sanitizer(self):
        """The attached Sanitizer, or None when sanitize is off."""
        return self._san

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGen, name: str = "",
                daemon: bool = False, observer: bool = False) -> Process:
        return Process(self, gen, name=name, daemon=daemon,
                       observer=observer)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _post(self, event: Event, delay: int = 0) -> None:
        self._seq += 1
        active = self._active_process
        if active is not None and active.observer:
            event._observer = True
        if event._observer:
            self._observers_queued += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))
        if self._san is not None:
            self._san.note_scheduled(event, self.now + delay, self._seq)

    def run(self, until: Optional[int] = None) -> int:
        """Drain the queue; stop once simulated time would pass ``until``.

        Stops early when only *observer* events remain (see
        :class:`Process`): a periodic telemetry sampler keeps ticking
        while model events are pending but never keeps the run alive on
        its own, so with monitoring attached a run ends at the exact
        same simulated instant as without it.

        Returns the simulation time when the run stopped.
        """
        while self._queue:
            if self._observers_queued >= len(self._queue) and until is None:
                # Only sampler wake-ups left: the model is quiescent.
                break
            when, _seq, event = self._queue[0]
            if until is not None and when > until:
                self.now = until
                if self._san is not None:
                    self._san.finish()
                return self.now
            heapq.heappop(self._queue)
            if event._observer:
                self._observers_queued -= 1
            self.now = when
            callbacks, event.callbacks = event.callbacks, None
            if callbacks:
                for fn in callbacks:
                    fn(event)
            if event._exc is not None and not event._defused:
                raise event._exc
        if until is not None:
            self.now = max(self.now, until)
        if self._san is not None:
            self._san.finish()
        return self.now

    def run_process(self, gen: ProcessGen, until: Optional[int] = None) -> Any:
        """Convenience: spawn ``gen`` and run until it completes."""
        proc = self.process(gen)
        self.run(until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self.now}"
            )
        return proc.value

    @property
    def pending_events(self) -> int:
        return len(self._queue)
