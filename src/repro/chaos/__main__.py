"""CLI for the chaos engine.

Examples::

    # Nightly batch: 200 seeded scenarios, all cores, shrink failures
    python -m repro.chaos fuzz --seed 1234 --count 200 --jobs auto \\
        --shrink --out /tmp/chaos-failures

    # Prove the pipeline catches the planted canary bug
    python -m repro.chaos fuzz --seed 1234 --count 200 \\
        --canary retry-off-by-one

    # Reduce one failing scenario to its essence
    python -m repro.chaos shrink failing.json --canary retry-off-by-one

    # Replay scenario files, or the committed reproducer corpus
    python -m repro.chaos replay shrunk.json
    python -m repro.chaos replay --corpus

    # What reproducers are on file?
    python -m repro.chaos corpus

Exit status is 1 when violations (or corpus mismatches) were found,
0 on a clean run — so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from ..bench.runner import fan_out
from ..faults.canary import KNOWN_CANARIES
from .corpus import default_corpus_dir, load_entries, save_entry, \
    verify_entry
from .executor import run_payload, run_scenario
from .scenario import Scenario, generate, scenario_seed
from .shrinker import shrink


def _add_canary_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--canary", action="append", default=[],
                        choices=sorted(KNOWN_CANARIES),
                        help="arm a fault canary for every run "
                             "(repeatable); the pipeline must catch it")


def _cmd_fuzz(args: argparse.Namespace) -> int:
    canaries = tuple(args.canary)
    scenarios = [generate(scenario_seed(args.seed, i))
                 for i in range(args.count)]
    payloads = [(s.to_json(), canaries) for s in scenarios]
    results = fan_out(run_payload, payloads, jobs=args.jobs)
    failing: List[int] = [i for i, r in enumerate(results)
                          if r["violations"]]
    print(f"fuzz: seed={args.seed} count={args.count} "
          f"failing={len(failing)}")
    for i in failing:
        kinds = sorted({v["oracle"] for v in results[i]["violations"]})
        print(f"  [{i}] seed={scenarios[i].seed} kinds={kinds}")
        for v in results[i]["violations"][:3]:
            print(f"      {v['oracle']}: {v['detail']}")
    if failing and args.shrink:
        out = Path(args.out) if args.out else default_corpus_dir()
        for i in failing:
            reduced = shrink(scenarios[i], canaries=canaries)
            name = f"fuzz-{args.seed}-{i}"
            path = save_entry(
                out, name, reduced.scenario,
                expect=reduced.oracle_kinds,
                requires_canary=canaries,
                notes=f"shrunk from batch seed={args.seed} "
                      f"index={i} in {reduced.runs} runs")
            print(f"  shrunk [{i}] -> {path} "
                  f"({', '.join(reduced.steps) or 'already minimal'})")
    return 1 if failing else 0


def _cmd_shrink(args: argparse.Namespace) -> int:
    scenario = Scenario.from_json(Path(args.scenario).read_text())
    reduced = shrink(scenario, canaries=tuple(args.canary))
    print(f"shrunk in {reduced.runs} runs: "
          f"{'; '.join(reduced.steps) or 'already minimal'}",
          file=sys.stderr)
    text = json.dumps(reduced.scenario.to_dict(), indent=1,
                      sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    bad = 0
    if args.corpus or not args.files:
        entries = load_entries()
        if not entries:
            print("corpus is empty")
        for entry in entries:
            problems = verify_entry(entry)
            status = "FAIL" if problems else "ok"
            print(f"{status}  {entry['name']} "
                  f"(expect {entry['expect']})")
            for p in problems:
                print(f"      {p}")
            bad += len(problems)
    for name in args.files:
        doc = json.loads(Path(name).read_text())
        if "scenario" in doc:
            # A corpus-entry file (e.g. written by fuzz --shrink):
            # judge it against its own expectations.
            problems = verify_entry(doc)
            status = "FAIL" if problems else "ok"
            print(f"{status}  {name} (expect {doc['expect']})")
            for p in problems:
                print(f"      {p}")
            bad += len(problems)
            continue
        scenario = Scenario.from_dict(doc)
        result = run_scenario(scenario, canaries=tuple(args.canary))
        status = "FAIL" if result.violations else "ok"
        print(f"{status}  {name} crashed={result.crashed} "
              f"end_ns={result.end_ns}")
        for v in result.violations:
            print(f"      {v.oracle}: {v.detail}")
        bad += len(result.violations)
    return 1 if bad else 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    entries = load_entries(Path(args.dir) if args.dir else None)
    if not entries:
        print("corpus is empty")
        return 0
    for entry in entries:
        canary_note = (f" canary={entry['requires_canary']}"
                       if entry.get("requires_canary") else "")
        print(f"{entry['name']}: expect={entry['expect']}"
              f"{canary_note}")
        if entry.get("notes"):
            print(f"    {entry['notes']}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic chaos engine: fuzz, shrink, replay.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_fuzz = sub.add_parser("fuzz", help="run a seeded scenario batch")
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--count", type=int, default=200)
    p_fuzz.add_argument("--jobs", default=1,
                        help="worker processes, or 'auto'")
    p_fuzz.add_argument("--shrink", action="store_true",
                        help="shrink failures and save reproducers")
    p_fuzz.add_argument("--out", default=None,
                        help="directory for shrunk reproducers "
                             "(default: the committed corpus)")
    _add_canary_arg(p_fuzz)
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_shrink = sub.add_parser("shrink",
                              help="minimise one failing scenario")
    p_shrink.add_argument("scenario", help="scenario JSON file")
    p_shrink.add_argument("--out", default=None)
    _add_canary_arg(p_shrink)
    p_shrink.set_defaults(func=_cmd_shrink)

    p_replay = sub.add_parser("replay",
                              help="re-run scenario files or corpus")
    p_replay.add_argument("files", nargs="*")
    p_replay.add_argument("--corpus", action="store_true",
                          help="replay the committed corpus")
    _add_canary_arg(p_replay)
    p_replay.set_defaults(func=_cmd_replay)

    p_corpus = sub.add_parser("corpus", help="list corpus entries")
    p_corpus.add_argument("--dir", default=None)
    p_corpus.set_defaults(func=_cmd_corpus)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
