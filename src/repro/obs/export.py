"""Exporters over hierarchical spans and metrics.

* :func:`chrome_trace_json` — Chrome ``trace_event`` JSON (the
  "JSON Array Format"); load it at https://ui.perfetto.dev or
  ``chrome://tracing``.  Timestamps are microseconds (floats), so one
  simulated nanosecond is 0.001 us.
* :func:`collapsed_stacks` — Brendan Gregg's collapsed-stack format
  (``root;child;leaf <self-weight-ns>``), one line per unique stack;
  feed it to ``flamegraph.pl`` or speedscope.
* :func:`tree_fingerprint` — a SHA-256 over a canonical serialisation
  of the span forest (structure + categories + labels + durations);
  golden tests pin it so timeline regressions fail loudly.
* :func:`format_tree` — human-readable indented tree for examples.

All outputs are deterministic: spans are sorted by (start, span_id)
and JSON is dumped with sorted keys, so same-seed runs export
byte-identical artifacts.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional

from ..sim.trace import Span

__all__ = [
    "span_index",
    "children_map",
    "ancestor_chain",
    "chrome_trace_json",
    "counter_events",
    "flow_events",
    "write_chrome_trace",
    "collapsed_stacks",
    "write_flamegraph",
    "tree_fingerprint",
    "format_tree",
    "metrics_json",
]

# Synthetic Chrome-trace tid for spans recorded outside any host
# thread (the device model's daemon processes).
DEVICE_TID = 999


def _sorted_spans(spans: Iterable[Span]) -> List[Span]:
    return sorted(spans, key=lambda s: (s.start_ns, s.span_id))


# -- tree utilities ---------------------------------------------------------

def span_index(spans: Iterable[Span]) -> Dict[int, Span]:
    """Map span_id -> span."""
    return {s.span_id: s for s in spans}


def children_map(spans: Iterable[Span]) -> Dict[int, List[Span]]:
    """Map parent span_id (0 = roots) -> children sorted by start."""
    out: Dict[int, List[Span]] = {}
    for s in _sorted_spans(spans):
        bucket = out.get(s.parent_id)
        if bucket is None:
            bucket = []
            out[s.parent_id] = bucket
        bucket.append(s)
    return out


def ancestor_chain(span: Span, index: Dict[int, Span]) -> List[Span]:
    """Ancestors from direct parent to root (missing parents stop
    the walk — e.g. when the parent was recorded before a clear())."""
    chain: List[Span] = []
    cur = span
    while cur.parent_id:
        parent = index.get(cur.parent_id)
        if parent is None:
            break
        chain.append(parent)
        cur = parent
    return chain


# -- Chrome trace_event -----------------------------------------------------

def chrome_trace_events(spans: Iterable[Span],
                        pid: int = 1) -> List[dict]:
    """Complete ("X") events plus thread-name metadata."""
    ordered = _sorted_spans(spans)
    events: List[dict] = []
    tids = sorted({s.tid for s in ordered})
    for tid in tids:
        display = tid if tid >= 0 else DEVICE_TID
        name = f"thread-{tid}" if tid >= 0 else "device"
        events.append({
            "args": {"name": name},
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": display,
        })
    for s in ordered:
        events.append({
            "args": {
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "trace_id": s.trace_id,
                **{k: v for k, v in s.attrs},
            },
            "cat": s.category,
            "dur": s.duration_ns / 1000.0,
            "name": f"{s.category}/{s.label}" if s.label else s.category,
            "ph": "X",
            "pid": pid,
            "tid": s.tid if s.tid >= 0 else DEVICE_TID,
            "ts": s.start_ns / 1000.0,
        })
    return events


def counter_events(series_map, pid: int = 1) -> List[dict]:
    """Perfetto counter-track ("C") events from telemetry time series.

    ``series_map`` maps gauge name -> :class:`repro.sim.stats.TimeSeries`
    (a :attr:`repro.obs.monitor.Monitor.series` dict works as-is).
    Each gauge renders as its own counter track; load the trace in
    Perfetto and the tracks plot under the span rows.
    """
    events: List[dict] = []
    for name in sorted(series_map):
        series = series_map[name]
        for t, v in series.samples:
            events.append({
                "args": {"value": v},
                "name": name,
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": t / 1000.0,
            })
    return events


def flow_events(spans: Iterable[Span], pid: int = 1) -> List[dict]:
    """Perfetto flow ("s"/"t"/"f") events linking each host-side wait
    span to its device-side phase spans across the host/device
    boundary.

    One flow per host ``device`` span that has ``nvme`` children:
    start at submission on the host thread, a step at each device
    phase on the device track, finish back on the host thread at
    completion.  Perfetto draws these as arrows, so a tail op's
    arbiter queueing (submit arrow landing long after it left) is
    visible at a glance.
    """
    spans = _sorted_spans(spans)
    kids = children_map(spans)
    events: List[dict] = []
    for s in spans:
        if s.category != "device":
            continue
        phases = [c for c in kids.get(s.span_id, [])
                  if c.category == "nvme"]
        if not phases:
            continue
        common = {
            "cat": "io-flow",
            "id": s.span_id,
            "name": "submit->complete",
            "pid": pid,
        }
        events.append({**common, "ph": "s",
                       "tid": s.tid if s.tid >= 0 else DEVICE_TID,
                       "ts": s.start_ns / 1000.0})
        for phase in phases:
            events.append({**common, "ph": "t",
                           "tid": (phase.tid if phase.tid >= 0
                                   else DEVICE_TID),
                           "ts": phase.start_ns / 1000.0})
        events.append({**common, "ph": "f", "bp": "e",
                       "tid": s.tid if s.tid >= 0 else DEVICE_TID,
                       "ts": s.end_ns / 1000.0})
    return events


def chrome_trace_json(tracer_or_spans, pid: int = 1,
                      counters=None, flows: bool = False) -> str:
    """Serialise to the Chrome trace JSON Array Format (deterministic:
    sorted events, sorted keys, fixed separators).  ``counters`` is an
    optional gauge-name -> TimeSeries map appended as counter tracks;
    ``flows`` appends submission->completion flow arrows.  Omitting
    both yields byte-identical output to before they existed, so
    golden traces stay stable."""
    spans = getattr(tracer_or_spans, "spans", tracer_or_spans)
    events = chrome_trace_events(spans, pid=pid)
    if counters:
        events.extend(counter_events(counters, pid=pid))
    if flows:
        events.extend(flow_events(spans, pid=pid))
    return json.dumps({"displayTimeUnit": "ns", "traceEvents": events},
                      sort_keys=True, separators=(",", ":"))


def write_chrome_trace(tracer_or_spans, path, pid: int = 1,
                       counters=None, flows: bool = False) -> str:
    text = chrome_trace_json(tracer_or_spans, pid=pid, counters=counters,
                             flows=flows)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.write("\n")
    return text


# -- collapsed stacks (flamegraph) ------------------------------------------

def _frame(span: Span) -> str:
    return f"{span.category}/{span.label}" if span.label else span.category


def collapsed_stacks(tracer_or_spans) -> str:
    """Collapsed-stack lines weighted by *self* time (duration minus
    children's durations), suitable for flamegraph.pl / speedscope."""
    spans = list(getattr(tracer_or_spans, "spans", tracer_or_spans))
    index = span_index(spans)
    child_time: Dict[int, int] = {}
    for s in spans:
        if s.parent_id and s.parent_id in index:
            child_time[s.parent_id] = (child_time.get(s.parent_id, 0)
                                       + s.duration_ns)
    weights: Dict[str, int] = {}
    for s in spans:
        self_ns = s.duration_ns - child_time.get(s.span_id, 0)
        if self_ns <= 0:
            continue
        frames = [_frame(a) for a in reversed(ancestor_chain(s, index))]
        frames.append(_frame(s))
        key = ";".join(frames)
        weights[key] = weights.get(key, 0) + self_ns
    return "".join(f"{stack} {weights[stack]}\n"
                   for stack in sorted(weights))


def write_flamegraph(tracer_or_spans, path) -> str:
    text = collapsed_stacks(tracer_or_spans)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text


# -- fingerprint & pretty printer -------------------------------------------

def _canonical(span: Span, kids: Dict[int, List[Span]]) -> list:
    return [span.category, span.label, span.start_ns, span.duration_ns,
            span.tid,
            [_canonical(c, kids) for c in kids.get(span.span_id, [])]]


def tree_fingerprint(tracer_or_spans) -> str:
    """SHA-256 of the canonical span forest; pins structure, order,
    categories, labels, and every duration."""
    spans = list(getattr(tracer_or_spans, "spans", tracer_or_spans))
    kids = children_map(spans)
    index = span_index(spans)
    # Roots: parent 0, or parent missing from this window.
    roots = [s for s in _sorted_spans(spans)
             if s.parent_id == 0 or s.parent_id not in index]
    forest = [_canonical(s, kids) for s in roots]
    blob = json.dumps(forest, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def format_tree(tracer_or_spans, max_roots: Optional[int] = None) -> str:
    """Indented text rendering of the span forest."""
    spans = list(getattr(tracer_or_spans, "spans", tracer_or_spans))
    kids = children_map(spans)
    index = span_index(spans)
    roots = [s for s in _sorted_spans(spans)
             if s.parent_id == 0 or s.parent_id not in index]
    if max_roots is not None:
        roots = roots[:max_roots]
    lines: List[str] = []

    def render(span: Span, depth: int) -> None:
        lines.append(f"{'  ' * depth}{_frame(span)}"
                     f"  [{span.start_ns}..{span.end_ns}] "
                     f"{span.duration_ns / 1000.0:.3f}us"
                     f"  (trace {span.trace_id})")
        for child in kids.get(span.span_id, []):
            render(child, depth + 1)

    for root in roots:
        render(root, 0)
    return "\n".join(lines)


# -- metrics dump -----------------------------------------------------------

def metrics_json(registry) -> str:
    """Machine-readable metrics dump (deterministic ordering)."""
    return json.dumps(registry.snapshot(), sort_keys=True, indent=2)
