#!/usr/bin/env python3
"""sweep_gate — fail CI when a sweep grid cell regresses.

    python scripts/sweep_gate.py [--jobs auto] [--inject AXES:SPEC]

The CI entry point for the scenario sweep gate: runs the manifest's
grid through ``python -m repro.sweep gate`` with repo-root defaults
for every artifact the dashboard consumes —

- ``sweep-results.json``  — the run's per-cell records,
- ``sweep-report.json``   — the compare report (``ci_summary.py
  --sweep`` renders it into the merged job summary),
- ``sweep-summary.md``    — the standalone heat table
  (``$GITHUB_STEP_SUMMARY`` for the gate job itself),
- ``sweep-timings-fresh.json`` — per-cell timings with cache flags.

Exit status is the sweep CLI's: 0 clean, 1 when a cell is out of
tolerance (the per-layer blame line goes to stderr), 2 when a cell
fails to execute.  Compare verdicts come from metric tolerance bands
(``repro.sweep.compare``), not wall time — wall-clock regressions are
``perf_gate.py``'s job, and the two gates run as separate CI jobs so
neither can mask the other.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sweep.__main__ import main as sweep_main  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="sweep_gate", description=__doc__)
    ap.add_argument("--manifest",
                    default=str(REPO_ROOT / "sweep-manifest.json"))
    ap.add_argument("--baseline",
                    default=str(REPO_ROOT / "sweep-baseline.json"))
    ap.add_argument("--grid", default="default")
    ap.add_argument("--jobs", default="auto")
    ap.add_argument("--cache", default=".bench-cache")
    ap.add_argument("--no-cache", action="store_true")
    ap.add_argument("--inject", action="append", default=[],
                    metavar="AXES:FAULTSPEC",
                    help="seeded regression overlay (gate self-test)")
    ap.add_argument("--out", default="sweep-results.json")
    ap.add_argument("--report", default="sweep-report.json")
    ap.add_argument("--markdown", default="sweep-summary.md")
    ap.add_argument("--timings", default="sweep-timings-fresh.json")
    args = ap.parse_args(argv)

    forwarded = [
        "--manifest", args.manifest,
        "gate",
        "--baseline", args.baseline,
        "--grid", args.grid,
        "--jobs", str(args.jobs),
        "--cache", args.cache,
        "--out", args.out,
        "--report", args.report,
        "--markdown", args.markdown,
        "--timings", args.timings,
    ]
    if args.no_cache:
        forwarded.append("--no-cache")
    for inject in args.inject:
        forwarded += ["--inject", inject]
    return sweep_main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
