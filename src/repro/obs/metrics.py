"""Metrics registry: counters, gauges, log-linear histograms.

Naming convention (see ``docs/observability.md``): dotted lowercase
paths, ``<subsystem>.<metric>`` — e.g. ``faults.media_read_error``,
``fio.lat_ns``, ``machine.device_commands_served``.  Time-valued
metrics carry a ``_ns`` suffix.

The histogram uses HdrHistogram-style log-linear buckets: values below
``2**sub_bits`` get exact unit buckets; above that, each power-of-two
range is split into ``2**sub_bits`` linear sub-buckets, so any
reported quantile is within a relative error of ``2**-sub_bits`` of
the exact sample.  Percentiles follow the same nearest-rank convention
as :func:`repro.sim.stats.percentile` (rank = ceil(pct/100 * n)).

Everything is deterministic: snapshots are plain dicts with sorted
keys, so a JSON dump of the same run is byte-identical.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing integer (resettable via absorb)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n


class Gauge:
    """A point-in-time numeric value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket log-linear histogram of non-negative integers.

    ``sub_bits=5`` (the default) bounds the relative quantile error at
    1/32 ≈ 3.1%; count and sum are exact.

    Empty-histogram contract (pinned by tests): quantile accessors
    (:meth:`percentile`, :attr:`mean`) raise ``ValueError("no
    samples")`` — a percentile of nothing is a bug at the call site,
    not a zero — while :meth:`summary` degrades gracefully to
    ``{"count": 0, "sum": 0}`` so dumps of idle registries stay valid.
    :meth:`merge` treats an empty side as the identity.
    """

    __slots__ = ("name", "sub_bits", "counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str, sub_bits: int = 5):
        if not 0 < sub_bits < 16:
            raise ValueError(f"sub_bits out of range: {sub_bits}")
        self.name = name
        self.sub_bits = sub_bits
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    # -- bucket arithmetic -------------------------------------------------

    def _index(self, value: int) -> int:
        sub = 1 << self.sub_bits
        if value < sub:
            return value
        msb = value.bit_length() - 1
        shift = msb - self.sub_bits
        return ((shift + 1) << self.sub_bits) + ((value >> shift) - sub)

    def bucket_bounds(self, index: int) -> Tuple[int, int]:
        """Inclusive ``(lower, upper)`` value range of a bucket."""
        sub = 1 << self.sub_bits
        if index < sub:
            return index, index
        shift = (index >> self.sub_bits) - 1
        lower = (sub + (index & (sub - 1))) << shift
        return lower, lower + (1 << shift) - 1

    # -- recording ---------------------------------------------------------

    def record(self, value: int, n: int = 1) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative value {value}")
        if n <= 0:
            raise ValueError(f"histogram {self.name}: non-positive count {n}")
        value = int(value)
        idx = self._index(value)
        self.counts[idx] = self.counts.get(idx, 0) + n
        self.count += n
        self.sum += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def record_many(self, values: Iterable[int]) -> None:
        for v in values:
            self.record(v)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into self (same sub_bits required).

        Merging an empty histogram is the identity, in either
        direction: counts, sum and min/max are unaffected by the
        empty side.
        """
        if other.sub_bits != self.sub_bits:
            raise ValueError("cannot merge histograms with different "
                             f"sub_bits: {self.sub_bits} vs {other.sub_bits}")
        for idx, n in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max

    # -- quantiles ---------------------------------------------------------

    def percentile(self, pct: float) -> int:
        """Nearest-rank percentile, reported as the containing bucket's
        upper bound (clamped to the observed max).

        Raises ``ValueError`` when the histogram is empty (see the
        class docstring for the empty-histogram contract).
        """
        if self.count == 0:
            raise ValueError("no samples")
        if pct <= 0:
            return int(self.min)  # type: ignore[arg-type]
        rank = min(self.count, math.ceil(pct / 100.0 * self.count))
        cum = 0
        for idx in sorted(self.counts):
            cum += self.counts[idx]
            if cum >= rank:
                _, upper = self.bucket_bounds(idx)
                return min(upper, self.max)  # type: ignore[arg-type]
        raise AssertionError("unreachable: rank exceeded total count")

    def quantile_bounds(self, pct: float) -> Tuple[int, int]:
        """Exact inclusive ``(lower, upper)`` value bounds of the
        bucket holding the nearest-rank percentile.

        The true sample at that rank lies inside these bounds — the
        log-linear layout makes ``upper - lower < lower / 2**sub_bits``
        above the linear range, which is where the ≤1/32 relative-error
        contract comes from.  Unlike :meth:`percentile` the bounds are
        *not* clamped to the observed max: they describe the bucket,
        so thresholds derived from ``lower`` (the exemplar reservoir)
        admit exactly the samples that landed in or above the bucket.

        Raises ``ValueError`` on an empty histogram.
        """
        if self.count == 0:
            raise ValueError("no samples")
        if pct <= 0:
            return self.bucket_bounds(self._index(int(self.min)))  # type: ignore[arg-type]
        rank = min(self.count, math.ceil(pct / 100.0 * self.count))
        cum = 0
        for idx in sorted(self.counts):
            cum += self.counts[idx]
            if cum >= rank:
                return self.bucket_bounds(idx)
        raise AssertionError("unreachable: rank exceeded total count")

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self.sum / self.count

    def summary(self) -> Dict[str, float]:
        """Deterministic digest; an empty histogram yields exactly
        ``{"count": 0, "sum": 0}`` (no min/max/quantile keys)."""
        if self.count == 0:
            return {"count": 0, "sum": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": int(self.min),       # type: ignore[arg-type]
            "max": int(self.max),       # type: ignore[arg-type]
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
        }


class MetricsRegistry:
    """A flat namespace of metrics, keyed by dotted name.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the existing instrument afterwards; asking for a name that already
    holds a different instrument kind is an error.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, own: Dict) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if table is not own and name in table:
                raise ValueError(f"metric {name!r} already registered "
                                 f"as a {kind}")

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_free(name, self._counters)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name, self._gauges)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, sub_bits: int = 5) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name, self._histograms)
            h = self._histograms[name] = Histogram(name, sub_bits)
        return h

    def absorb_counters(self, values: Dict[str, int],
                        prefix: str = "") -> None:
        """Set counters from a snapshot dict (e.g. ``Stats.summary()``).

        Unlike :meth:`Counter.inc` this *sets* the value, so absorbing
        the same snapshot twice is idempotent.
        """
        for key in sorted(values):
            self.counter(prefix + key).value = int(values[key])

    def counters_snapshot(self) -> Dict[str, int]:
        return {name: self._counters[name].value
                for name in sorted(self._counters)}

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict dump with sorted keys (machine-readable export)."""
        return {
            "counters": self.counters_snapshot(),
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].summary()
                           for name in sorted(self._histograms)},
        }

    def names(self) -> List[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])
