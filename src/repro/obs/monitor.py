"""Continuous telemetry: deterministic time-series sampling and SLOs.

Point-in-time observability (spans, histograms) misses exactly the
phenomena BypassD's sharing claims are about — queue depth building
under a burst, arbitration share drifting between tenants, tail
latency excursions inside a window (Figs. 9-12).  This module adds a
*simulated* sampler: a daemon :class:`~repro.sim.engine.Process`
flagged ``observer`` that wakes at a fixed period, snapshots read-only
gauges across every layer into :class:`~repro.sim.stats.TimeSeries`,
and evaluates declarative :class:`SLO` objects over trailing windows.

Determinism contract
--------------------
The sampler must be *provably time-neutral*: a same-seed run with
monitoring on or off produces a byte-identical timeline.  Three rules
make that hold (and ``tests/test_determinism.py`` pins it):

- the sampler only **reads** model state — it never succeeds events,
  acquires resources, or mutates any layer;
- it only yields timeouts, and every event it schedules is tagged as
  an observer event so :meth:`repro.sim.engine.Simulator.run` ends the
  run at the same instant it would without the sampler;
- its period (default 9973 ns) and phase (default 1009 ns) are prime,
  so ticks stay off-phase from the microsecond-aligned op cadences of
  the hardware model and never systematically alias with them.

Gauge naming scheme
-------------------
``<subsystem>.<object>.<metric>`` — lowercase, digits and underscores,
two or more dot-separated components (``GAUGE_NAME_RE``; simlint rule
SIM012 flags literal registrations that stray from it).  Times are
nanoseconds and carry a ``_ns`` suffix; fractions are in [0, 1] and
named ``*_occupancy``, ``*_share`` or ``*_rate``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple, Union

from ..sim.stats import TimeSeries, percentile
from .exemplar import ExemplarConfig, capture_exemplars, render_exemplars

__all__ = [
    "DEFAULT_PERIOD_NS",
    "DEFAULT_PHASE_NS",
    "GAUGE_NAME_RE",
    "SLO",
    "Breach",
    "MonitorConfig",
    "Monitor",
    "sparkline",
    "set_default_monitor",
    "default_monitor",
    "drain_ambient_monitors",
]

# Primes: see "Determinism contract" above.
DEFAULT_PERIOD_NS = 9_973
DEFAULT_PHASE_NS = 1_009

GAUGE_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class SLO:
    """A service-level objective: assert ``reduce(window) < limit``.

    ``series`` names the gauge (or an :meth:`Monitor.observe`-fed
    series, e.g. per-op latency).  ``reduce`` is ``"max"``, ``"mean"``
    or ``"p<NN>"`` (nearest-rank percentile, e.g. ``"p99"``); it is
    applied to the trailing ``window_ns`` at every sampler tick
    (``window_ns=0`` means "latest sample only").  The objective is an
    upper bound: a tick where the reduced value reaches ``limit``
    is in breach.
    """

    name: str
    series: str
    limit: float
    reduce: str = "max"
    window_ns: int = 0

    def apply(self, values: List[float]) -> float:
        if self.reduce == "max":
            return max(values)
        if self.reduce == "mean":
            return sum(values) / len(values)
        if self.reduce.startswith("p"):
            return percentile(values, float(self.reduce[1:]))
        raise ValueError(f"unknown SLO reducer: {self.reduce!r}")


@dataclass(frozen=True)
class Breach:
    """Edge-triggered record of a series *entering* breach."""

    t_ns: int
    slo: str
    value: float


@dataclass(frozen=True)
class MonitorConfig:
    period_ns: int = DEFAULT_PERIOD_NS
    phase_ns: int = DEFAULT_PHASE_NS
    slos: Tuple[SLO, ...] = ()
    # Tail exemplar capture (repro.obs.exemplar).  None keeps it off
    # and leaves every telemetry dump byte-identical to before the
    # feature existed; an ExemplarConfig adds a per-tenant "exemplars"
    # section to telemetry() and report() on traced machines.
    exemplars: Optional["ExemplarConfig"] = None


# -- ambient configuration (mirrors repro.faults.default_injector) -----
#
# `repro.bench --monitor` can't thread a config through every
# experiment signature, so it installs one here; each Machine built
# while it is set attaches a Monitor and registers it for collection.

_DEFAULT_CONFIG: Optional[MonitorConfig] = None
_AMBIENT: List["Monitor"] = []


def set_default_monitor(config: Optional[MonitorConfig]) -> None:
    """Install (or clear, with None) the ambient monitor config."""
    global _DEFAULT_CONFIG
    _DEFAULT_CONFIG = config
    if config is None:
        _AMBIENT.clear()


def default_monitor() -> Optional[MonitorConfig]:
    return _DEFAULT_CONFIG


def drain_ambient_monitors() -> List["Monitor"]:
    """Monitors attached via the ambient config since the last drain."""
    out = list(_AMBIENT)
    _AMBIENT.clear()
    return out


class Monitor:
    """Periodic telemetry sampler bound to one machine.

    Every tick snapshots the gauge set below into per-gauge
    :class:`TimeSeries` (mirrored into the machine's metrics registry
    as plain gauges), then evaluates the configured SLOs.  Breaches are
    edge-triggered: one :class:`Breach` per excursion, stamped into the
    tracer as a zero-length ``slo`` span and counted in metrics; the
    per-tick violation count is kept separately in ``breach_ticks``.
    """

    def __init__(self, machine, config: Optional[MonitorConfig] = None,
                 ambient: bool = False):
        self.machine = machine
        self.config = config if config is not None else MonitorConfig()
        self.series: Dict[str, TimeSeries] = {}
        self.breaches: List[Breach] = []
        self.breach_ticks: Dict[str, int] = {
            slo.name: 0 for slo in self.config.slos
        }
        self.samples_taken = 0
        self._in_breach: Dict[str, bool] = {}
        self._prev_cumulative: Dict[str, float] = {}
        if ambient:
            _AMBIENT.append(self)
        machine.sim.process(self._sampler(), name="telemetry-sampler",
                            daemon=True, observer=True)

    # -- sampling ------------------------------------------------------

    def _sampler(self) -> Generator:
        sim = self.machine.sim
        if self.config.phase_ns:
            yield sim.timeout(self.config.phase_ns)
        while True:
            self.sample()
            yield sim.timeout(self.config.period_ns)

    def _series(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = TimeSeries(name)
        return series

    def observe(self, name: str, value: float) -> None:
        """Feed an externally produced sample (e.g. one op latency).

        Workload drivers call this at completion time; SLOs can then
        window over the series exactly like over a sampled gauge.
        """
        self._series(name).record(self.machine.sim.now, value)

    def _rate(self, key: str, cumulative: float) -> float:
        """Per-tick delta of a monotonically increasing counter."""
        delta = cumulative - self._prev_cumulative.get(key, 0.0)
        self._prev_cumulative[key] = cumulative
        return delta

    def _gauges(self) -> List[Tuple[str, float]]:
        m = self.machine
        out: List[Tuple[str, float]] = []
        for qp in m.device.queue_pairs():
            prefix = f"nvme.qp{qp.qid}"
            out.append((f"{prefix}.sq_occupancy", qp.sq_occupancy))
            out.append((f"{prefix}.cq_occupancy", qp.cq_occupancy))
            out.append((f"{prefix}.inflight", float(qp.inflight)))
            out.append((f"{prefix}.arb_share",
                        m.device.arbiter.share(qp.qid)))
        out.append(("nvme.device.inflight", float(m.device.inflight)))
        out.append(("kernel.blockio.inflight", float(m.blockio.inflight)))
        out.append(("kernel.blockio.softirq_backlog",
                    float(m.blockio.softirq_backlog)))
        out.append(("kernel.pagecache.hit_rate", m.pagecache.hit_rate))
        out.append(("kernel.pagecache.dirty_pages",
                    float(m.pagecache.dirty_pages)))
        out.append(("fs.journal.depth", float(m.fs.journal.depth)))
        out.append(("cpu.cores.in_use", float(m.cpus.in_use)))
        out.append(("cpu.cores.runnable_waiting",
                    float(m.cpus.runnable_waiting)))
        injected = float(sum(m.faults.counts.values()))
        retries = float(m.blockio.retries + m.volume.retries
                        + sum(lib.io_retries for lib in m._userlibs))
        out.append(("faults.injected_rate",
                    self._rate("faults.injected", injected)))
        out.append(("faults.retry_rate", self._rate("faults.retries",
                                                    retries)))
        return out

    def sample(self) -> None:
        """Take one snapshot now (the sampler's tick body)."""
        now = self.machine.sim.now
        self.samples_taken += 1
        for name, value in self._gauges():
            self._series(name).record(now, value)
            self.machine.metrics.gauge(name).set(value)
        self._evaluate_slos(now)

    # -- SLO evaluation ------------------------------------------------

    def _evaluate_slos(self, now: int) -> None:
        for slo in self.config.slos:
            series = self.series.get(slo.series)
            violated = False
            value = 0.0
            if series is not None and len(series):
                if slo.window_ns:
                    # +1: `between` is half-open, a sample taken at
                    # exactly `now` belongs to this window.
                    vals = series.between(now - slo.window_ns, now + 1)
                else:
                    vals = [series.latest[1]]
                if vals:
                    value = slo.apply(vals)
                    violated = value >= slo.limit
            if violated:
                self.breach_ticks[slo.name] += 1
                if not self._in_breach.get(slo.name, False):
                    self.breaches.append(Breach(now, slo.name, value))
                    self.machine.tracer.record("slo",
                                               f"breach:{slo.name}",
                                               now, now)
                    self.machine.metrics.counter(
                        f"slo.{slo.name}.breaches").inc()
            self._in_breach[slo.name] = violated

    @property
    def breach_count(self) -> int:
        return len(self.breaches)

    # -- tail exemplars ------------------------------------------------

    def exemplars(self) -> Optional[Dict[int, list]]:
        """Per-tenant tail exemplars, or None when capture is off.

        Requires ``exemplars=ExemplarConfig(...)`` in the monitor
        config *and* a real tracer on the machine (the reservoir folds
        recorded span trees).  Pure observer: reads the trace, mutates
        nothing."""
        if self.config.exemplars is None:
            return None
        tracer = self.machine.tracer
        if not getattr(tracer, "enabled", False):
            return None
        return capture_exemplars(tracer, self.config.exemplars)

    # -- dumps ---------------------------------------------------------

    def telemetry(self) -> dict:
        """Deterministic telemetry dump (the golden-file format)."""
        gauges = {}
        for name in sorted(self.series):
            series = self.series[name]
            gauges[name] = {
                "samples": [[t, v] for t, v in series.samples],
                "summary": series.summary(),
            }
        slos = []
        for slo in self.config.slos:
            slos.append({
                "name": slo.name,
                "series": slo.series,
                "limit": slo.limit,
                "reduce": slo.reduce,
                "window_ns": slo.window_ns,
                "breach_ticks": self.breach_ticks[slo.name],
                "breaches": [[b.t_ns, b.value] for b in self.breaches
                             if b.slo == slo.name],
            })
        out = {
            "schema": 1,
            "period_ns": self.config.period_ns,
            "phase_ns": self.config.phase_ns,
            "samples_taken": self.samples_taken,
            "end_ns": self.machine.sim.now,
            "gauges": gauges,
            "slos": slos,
        }
        # Present only when exemplar capture is configured, so dumps
        # without it stay byte-identical to the committed goldens.
        exemplars = self.exemplars()
        if exemplars is not None:
            out["exemplars"] = {
                str(tid): [ex.to_dict() for ex in exemplars[tid]]
                for tid in sorted(exemplars)
            }
        return out

    def telemetry_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.telemetry(), sort_keys=True,
                          indent=indent,
                          separators=None if indent else (",", ":"))

    def write_telemetry(self, path, indent: int = 1) -> str:
        text = self.telemetry_json(indent=indent)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        return text

    # -- rendering -----------------------------------------------------

    def report(self, width: int = 28) -> str:
        """Human telemetry section: sparklines plus the breach table."""
        cfg = self.config
        lines = [f"telemetry: {self.samples_taken} samples @ "
                 f"{cfg.period_ns} ns (phase {cfg.phase_ns} ns)"]
        for name in sorted(self.series):
            series = self.series[name]
            vals = series.values()
            if not vals or max(vals) <= 0.0:
                continue
            lines.append(f"  {name:<32} {sparkline(series, width)} "
                         f"max {max(vals):g}")
        if cfg.slos:
            lines.append(f"SLO breaches: {self.breach_count}")
            if self.breaches:
                lines.append(f"  {'t_ns':>12}  {'slo':<24} value")
                for b in self.breaches:
                    lines.append(f"  {b.t_ns:>12}  {b.slo:<24} "
                                 f"{b.value:g}")
        exemplars = self.exemplars()
        if exemplars is not None:
            lines.append(f"tail exemplars (p{cfg.exemplars.percentile:g}"
                         f", window {cfg.exemplars.capacity}):")
            text = render_exemplars(exemplars)
            lines.extend("  " + ln for ln in text.splitlines())
        return "\n".join(lines)


def sparkline(series: TimeSeries, width: int = 28) -> str:
    """Render a TimeSeries as a fixed-width unicode sparkline.

    Samples are bucketed by time (max per bucket) and scaled against
    the series maximum; empty buckets render as spaces.  Purely a
    function of the samples, hence deterministic.
    """
    if not series.samples or width < 1:
        return " " * width
    t0 = series.samples[0][0]
    t1 = series.samples[-1][0]
    span = max(1, t1 - t0 + 1)
    buckets: List[Optional[float]] = [None] * width
    for t, v in series.samples:
        idx = min(width - 1, (t - t0) * width // span)
        prev = buckets[idx]
        buckets[idx] = v if prev is None else max(prev, v)
    top = max(v for v in buckets if v is not None)
    out = []
    for v in buckets:
        if v is None:
            out.append(" ")
        elif top <= 0.0:
            out.append(_SPARK_BLOCKS[0])
        else:
            rank = int(v / top * (len(_SPARK_BLOCKS) - 1))
            out.append(_SPARK_BLOCKS[rank])
    return "".join(out)


def resolve_monitor_config(
    monitor: Union[bool, MonitorConfig, None],
) -> Tuple[Optional[MonitorConfig], bool]:
    """Map Machine's ``monitor=`` argument to (config, is_ambient).

    ``None`` defers to the ambient config (installed by
    ``repro.bench --monitor``), ``True`` means defaults, ``False``
    forces monitoring off regardless of the ambient setting.
    """
    if monitor is None:
        return _DEFAULT_CONFIG, _DEFAULT_CONFIG is not None
    if monitor is True:
        return MonitorConfig(), False
    if monitor is False:
        return None, False
    return monitor, False
