"""Unit tests for queue pairs, arbitration and the media backend."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.params import DEFAULT_PARAMS
from repro.nvme.backend import MediaBackend
from repro.nvme.queues import QueueFullError, QueuePair
from repro.nvme.scheduler import RoundRobinArbiter, WeightedArbiter
from repro.nvme.spec import Command, Completion, Opcode, Status
from repro.sim.engine import Simulator


def mkcmd(addr=0):
    return Command(Opcode.READ, addr=addr, nbytes=512)


class TestQueuePair:
    def test_submit_and_complete(self):
        sim = Simulator()
        qp = QueuePair(sim, qid=1, pasid=5)
        cmd = mkcmd()
        ev = qp.submit(cmd)
        assert qp.sq_len == 1
        assert qp.inflight == 1
        fetched = qp.fetch()
        assert fetched is cmd
        qp.post_completion(Completion(cid=cmd.cid,
                                      status=Status.SUCCESS), nbytes=512)
        sim.run()
        assert ev.triggered
        assert ev.value.ok
        assert qp.completed == 1
        assert qp.bytes_completed == 512

    def test_depth_enforced(self):
        sim = Simulator()
        qp = QueuePair(sim, qid=1, pasid=0, depth=2)
        qp.submit(mkcmd())
        qp.submit(mkcmd())
        with pytest.raises(QueueFullError):
            qp.submit(mkcmd())

    def test_shutdown_rejects_submissions(self):
        sim = Simulator()
        qp = QueuePair(sim, qid=1, pasid=0)
        qp.shutdown()
        with pytest.raises(QueueFullError):
            qp.submit(mkcmd())

    def test_pop_completion(self):
        sim = Simulator()
        qp = QueuePair(sim, qid=1, pasid=0)
        assert qp.pop_completion() is None
        cmd = mkcmd()
        qp.submit(cmd)
        qp.fetch()
        qp.post_completion(Completion(cid=cmd.cid, status=Status.SUCCESS))
        assert qp.pop_completion().cid == cmd.cid


class TestRoundRobin:
    def _queues(self, sim, n):
        return [QueuePair(sim, qid=i + 1, pasid=0) for i in range(n)]

    def test_cycles_through_queues(self):
        sim = Simulator()
        arb = RoundRobinArbiter()
        qps = self._queues(sim, 3)
        for qp in qps:
            arb.add_queue(qp)
            for i in range(2):
                qp.submit(mkcmd(addr=qp.qid * 100 + i))
        order = []
        while True:
            picked = arb.select()
            if picked is None:
                break
            order.append(picked[0].qid)
        assert order == [1, 2, 3, 1, 2, 3]

    def test_skips_empty_queues(self):
        sim = Simulator()
        arb = RoundRobinArbiter()
        qps = self._queues(sim, 3)
        for qp in qps:
            arb.add_queue(qp)
        qps[1].submit(mkcmd())
        qp, _ = arb.select()
        assert qp.qid == 2
        assert arb.select() is None

    def test_remove_queue(self):
        sim = Simulator()
        arb = RoundRobinArbiter()
        qps = self._queues(sim, 2)
        for qp in qps:
            arb.add_queue(qp)
        arb.remove_queue(qps[0])
        assert arb.queue_count == 1
        qps[1].submit(mkcmd())
        assert arb.select()[0].qid == 2

    def test_fairness_under_asymmetric_load(self):
        """A queue with many requests cannot starve a queue with few:
        service alternates (the Figure 11 mechanism)."""
        sim = Simulator()
        arb = RoundRobinArbiter()
        hog, light = self._queues(sim, 2)
        arb.add_queue(hog)
        arb.add_queue(light)
        for i in range(10):
            hog.submit(mkcmd(addr=i))
        light.submit(mkcmd(addr=999))
        light.submit(mkcmd(addr=998))
        order = [arb.select()[0].qid for _ in range(4)]
        assert order == [1, 2, 1, 2]


class TestWeightedArbiter:
    def test_weight_ratio(self):
        sim = Simulator()
        arb = WeightedArbiter()
        a = QueuePair(sim, qid=1, pasid=0)
        b = QueuePair(sim, qid=2, pasid=0)
        arb.add_queue(a, weight=3)
        arb.add_queue(b, weight=1)
        for i in range(12):
            a.submit(mkcmd(addr=i))
            b.submit(mkcmd(addr=100 + i))
        served = {1: 0, 2: 0}
        for _ in range(8):
            qp, _ = arb.select()
            served[qp.qid] += 1
        assert served[1] == 3 * served[2]

    def test_bad_weight(self):
        arb = WeightedArbiter()
        sim = Simulator()
        with pytest.raises(ValueError):
            arb.add_queue(QueuePair(sim, 1, 0), weight=0)


class TestMediaBackend:
    def test_lazy_zero_reads(self):
        b = MediaBackend(DEFAULT_PARAMS, 1 << 20)
        assert b.read_blocks(100, 2) == bytes(1024)
        assert b.materialized_blocks == 0

    def test_write_then_read(self):
        b = MediaBackend(DEFAULT_PARAMS, 1 << 20)
        data = bytes([5]) * 1024
        b.write_blocks(10, 2, data)
        assert b.read_blocks(10, 2) == data
        assert b.materialized_blocks == 2

    def test_zero_write_dematerializes(self):
        b = MediaBackend(DEFAULT_PARAMS, 1 << 20)
        b.write_blocks(5, 1, bytes([1]) * 512)
        b.write_blocks(5, 1, bytes(512))
        assert b.materialized_blocks == 0

    def test_zero_blocks(self):
        b = MediaBackend(DEFAULT_PARAMS, 1 << 20)
        b.write_blocks(5, 1, bytes([1]) * 512)
        b.zero_blocks(5, 1)
        assert b.read_blocks(5, 1) == bytes(512)

    def test_capture_disabled(self):
        b = MediaBackend(DEFAULT_PARAMS, 1 << 20, capture_data=False)
        b.write_blocks(0, 1, bytes([9]) * 512)
        assert b.read_blocks(0, 1) is None
        assert b.materialized_blocks == 0

    def test_range_checks(self):
        b = MediaBackend(DEFAULT_PARAMS, 1 << 20)
        with pytest.raises(ValueError):
            b.read_blocks(10**9, 1)
        with pytest.raises(ValueError):
            b.write_blocks(-1, 1, bytes(512))

    def test_payload_length_validated(self):
        b = MediaBackend(DEFAULT_PARAMS, 1 << 20)
        with pytest.raises(ValueError):
            b.write_blocks(0, 2, bytes(512))

    def test_timing_monotone_in_size(self):
        b = MediaBackend(DEFAULT_PARAMS, 1 << 20)
        assert b.transfer_ns(4096) < b.transfer_ns(131072)
        assert b.link_ns(4096) <= b.transfer_ns(4096)

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=63),
        st.binary(min_size=512, max_size=512)), max_size=30))
    def test_backend_behaves_like_dict(self, writes):
        """Property: backend reads always reflect the last write."""
        b = MediaBackend(DEFAULT_PARAMS, 1 << 20)
        model = {}
        for lba, data in writes:
            b.write_blocks(lba, 1, data)
            model[lba] = data
        for lba, data in model.items():
            assert b.read_blocks(lba, 1) == data
