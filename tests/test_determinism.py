"""The simulation must be perfectly reproducible: identical inputs give
identical simulated timelines, down to the nanosecond — and with
tracing on, identical span trees and byte-identical trace exports."""

import os
import pathlib

from repro import GiB, Machine
from repro.apps.fio import FioJob, run_fio
from repro.apps.wiredtiger import BTreeGeometry, run_wiredtiger_ycsb
from repro.obs.export import chrome_trace_json, tree_fingerprint
from repro.obs.monitor import SLO, MonitorConfig

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def test_fio_run_is_deterministic():
    def once():
        m = Machine(capacity_bytes=2 * GiB, memory_bytes=256 << 20,
                    capture_data=False)
        job = FioJob(engine="bypassd", rw="randread", block_size=4096,
                     file_size=16 << 20, threads=4, ops_per_thread=50,
                     seed=1234)
        r = run_fio(m, job)
        return (r.latency.samples, r.iops, m.now)

    assert once() == once()


def test_wiredtiger_run_is_deterministic():
    geom = BTreeGeometry(100_000)

    def once():
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                    capture_data=False)
        r = run_wiredtiger_ycsb(m, "xrp", "A", threads=2,
                                ops_per_thread=60, geometry=geom,
                                seed=77)
        return (r.kops, r.mean_lat_us, r.ios, m.now)

    assert once() == once()


def test_full_stack_timeline_is_deterministic():
    def once():
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20)
        proc = m.spawn_process()
        lib = m.userlib(proc, nonblocking_writes=True)
        t = proc.new_thread()
        stamps = []

        def body():
            f = yield from lib.open(t, "/d", write=True, create=True)
            yield from f.append(t, 8192, b"d" * 8192)
            stamps.append(m.now)
            for i in range(10):
                yield from f.pwrite(t, (i % 2) * 4096, 4096)
                stamps.append(m.now)
            yield from f.fsync(t)
            stamps.append(m.now)

        m.run_process(body())
        return stamps

    assert once() == once()


# -- golden traces -----------------------------------------------------------

def _quickstart(trace: bool):
    """The README's quickstart workload, optionally traced."""
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                trace=trace)
    proc = m.spawn_process("app")
    lib = m.userlib(proc)
    t = proc.new_thread("app-0")
    stamps = []

    def body():
        f = yield from lib.open(t, "/data", write=True, create=True)
        yield from f.append(t, 8192, b"x" * 8192)
        stamps.append(m.now)
        for i in range(4):
            yield from f.pread(t, (i * 2048) % 8192, 4096)
            stamps.append(m.now)
        yield from f.pwrite(t, 0, 4096)
        stamps.append(m.now)
        yield from f.fsync(t)
        stamps.append(m.now)
        yield from f.close(t)

    m.run_process(body())
    stamps.append(m.now)
    return m, stamps


def test_chrome_trace_export_is_byte_identical():
    """Same seed, two fresh machines: the exported Chrome trace JSON
    must match byte for byte (span ids, timestamps, everything)."""
    a, _ = _quickstart(trace=True)
    b, _ = _quickstart(trace=True)
    ja = chrome_trace_json(a.tracer)
    jb = chrome_trace_json(b.tracer)
    assert ja == jb
    assert '"ph":"X"' in ja  # actually exported spans


def test_quickstart_span_tree_matches_golden():
    """The span-tree fingerprint is pinned: any change to the span
    taxonomy, nesting, or a single duration fails here.  Refresh with
    REPRO_UPDATE_GOLDEN=1 after an intentional change."""
    m, _ = _quickstart(trace=True)
    fp = tree_fingerprint(m.tracer)
    golden = GOLDEN_DIR / "quickstart_trace.fingerprint"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden.write_text(fp + "\n", encoding="utf-8")
    assert golden.exists(), \
        "golden fingerprint missing; run with REPRO_UPDATE_GOLDEN=1"
    assert fp == golden.read_text(encoding="utf-8").strip(), \
        "span tree changed; if intentional, refresh the golden file " \
        "with REPRO_UPDATE_GOLDEN=1"


def test_tracing_does_not_perturb_timeline():
    """Tracing must be a pure observer: with the tracer on or off
    (NULL_TRACER), the same workload hits identical timestamps."""
    traced, traced_stamps = _quickstart(trace=True)
    untraced, untraced_stamps = _quickstart(trace=False)
    assert traced_stamps == untraced_stamps
    assert traced.now == untraced.now
    assert len(traced.tracer.spans) > 0
    assert len(getattr(untraced.tracer, "spans", [])) == 0


# -- telemetry monitoring ----------------------------------------------------

def _two_tenant_run(monitor):
    """Two tenants sharing one device (Fig. 10 shape): two processes,
    each on its own NVMe queue pair, driving 4K random writes through
    the BypassD engine — with monitoring on, queue-depth telemetry and
    a deterministically breaching backlog SLO come out."""
    m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                capture_data=False, trace=True, monitor=monitor)
    job = FioJob(engine="bypassd", rw="randwrite", block_size=4096,
                 file_size=8 << 20, threads=1, processes=2,
                 ops_per_thread=40, seed=42)
    r = run_fio(m, job)
    return m, r


TWO_TENANT_SLOS = MonitorConfig(slos=(
    # Breaches: two tenants pile >= 2 commands onto the shared device.
    SLO("device_backlog", "nvme.device.inflight", 2.0, reduce="max",
        window_ns=50_000),
    # Never breaches: per-op latency stays well under 50 us.
    SLO("fio_p99", "fio.lat_ns", 50_000.0, reduce="p99",
        window_ns=200_000),
))


def test_monitoring_does_not_perturb_timeline():
    """The sampler must be provably time-neutral: same-seed runs with
    monitoring on (SLOs breaching and all) and off end at the same
    nanosecond with identical op latencies and an identical span tree
    (modulo the monitor's own zero-length slo spans)."""
    mon, mon_r = _two_tenant_run(monitor=TWO_TENANT_SLOS)
    off, off_r = _two_tenant_run(monitor=False)
    assert mon.now == off.now
    assert mon_r.latency.samples == off_r.latency.samples
    assert mon.monitor is not None and off.monitor is None
    assert mon.monitor.breach_count > 0  # the SLO actually fired
    mon_spans = [s for s in mon.tracer.spans if s.category != "slo"]
    assert tree_fingerprint(mon_spans) \
        == tree_fingerprint(off.tracer.spans)


def test_midrun_monitor_start_does_not_perturb_timeline():
    """Starting the *first* observer process mid-run flips the engine
    off its fast dispatch path (``_switch_to_instrumented``) while
    events are already queued; the swap must be timeline-neutral:
    same-seed runs with and without the late monitor stay byte
    identical (modulo the monitor's own slo spans)."""
    from repro.obs.monitor import Monitor

    def once(late_monitor: bool):
        m = Machine(capacity_bytes=1 * GiB, memory_bytes=256 << 20,
                    capture_data=False, trace=True)
        assert not m.sim._instrumented  # starts on the fast path
        proc = m.spawn_process("app")
        lib = m.userlib(proc)
        t = proc.new_thread("app-0")
        stamps = []

        def body():
            f = yield from lib.open(t, "/data", write=True, create=True)
            yield from f.append(t, 16384, b"x" * 16384)
            stamps.append(m.now)
            for i in range(8):
                if i == 3 and late_monitor:
                    # First observer enters here, mid-run: the engine
                    # switches dispatch paths under queued events.
                    Monitor(m, MonitorConfig())
                yield from f.pwrite(t, (i % 4) * 4096, 4096)
                stamps.append(m.now)
            yield from f.fsync(t)
            stamps.append(m.now)

        m.run_process(body())
        if late_monitor:
            assert m.sim._instrumented
        return m, stamps

    mon, mon_stamps = once(True)
    off, off_stamps = once(False)
    assert mon_stamps == off_stamps
    assert mon.now == off.now
    mon_spans = [s for s in mon.tracer.spans if s.category != "slo"]
    assert tree_fingerprint(mon_spans) \
        == tree_fingerprint(off.tracer.spans)
    assert chrome_trace_json(mon_spans) \
        == chrome_trace_json(off.tracer.spans)


def test_two_tenant_telemetry_matches_golden():
    """The full telemetry dump — queue-depth series for both tenants'
    queue pairs plus the SLO breach record — is pinned byte for byte.
    Refresh with REPRO_UPDATE_GOLDEN=1 after an intentional change."""
    m, _ = _two_tenant_run(monitor=TWO_TENANT_SLOS)
    text = m.monitor.telemetry_json(indent=1) + "\n"
    golden = GOLDEN_DIR / "two_tenant_telemetry.json"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden.write_text(text, encoding="utf-8")
    assert golden.exists(), \
        "golden telemetry missing; run with REPRO_UPDATE_GOLDEN=1"
    assert text == golden.read_text(encoding="utf-8"), \
        "telemetry dump changed; if intentional, refresh the golden " \
        "file with REPRO_UPDATE_GOLDEN=1"
    # Sanity on the pinned content: both tenants' queue pairs sampled,
    # and the backlog SLO breached at least once.
    import json
    doc = json.loads(text)
    assert "nvme.qp1.inflight" in doc["gauges"]
    assert "nvme.qp2.inflight" in doc["gauges"]
    backlog = next(s for s in doc["slos"]
                   if s["name"] == "device_backlog")
    assert backlog["breaches"], "expected a pinned SLO breach"
    p99 = next(s for s in doc["slos"] if s["name"] == "fio_p99")
    assert p99["breaches"] == [] and p99["breach_ticks"] == 0
