"""Discrete-event simulation substrate (engine, resources, CPUs, stats)."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Lock, Resource, Semaphore, Store
from .cpu import CPUSet, Thread
from .sanitizer import Diagnostic, EventProvenance, Sanitizer, SanitizerError
from .trace import NULL_TRACER, NullTracer, Span, Tracer
from .stats import (
    BreakdownRecorder,
    LatencyRecorder,
    ThroughputCounter,
    TimeSeries,
    percentile,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Lock",
    "Resource",
    "Semaphore",
    "Store",
    "CPUSet",
    "Thread",
    "BreakdownRecorder",
    "LatencyRecorder",
    "ThroughputCounter",
    "TimeSeries",
    "percentile",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "Diagnostic",
    "EventProvenance",
    "Sanitizer",
    "SanitizerError",
]
