"""The declarative architecture manifest: the allowed layer DAG.

The whole-program pass (:mod:`repro.analysis.program`) checks every
intra-package import edge against this manifest (rule SIM015), seeds
hot-path reachability from :data:`HOT_ENTRY_POINTS` (SIM018), and
holds the modules named in :data:`ORACLE_MODULES` to inferred purity
(SIM017).

The layering mirrors the system the paper describes — userlib above
syscalls above blockio above NVMe, with the device model below — and
the split SimpleSSD/Amber show must stay clean for full-system
simulation to be trustworthy:

    sim  <-  hw  <-  nvme  <-  kernel / fs  <-  core / baselines
                                               <-  machine
                                               <-  apps / bench / chaos / obs

Amending the manifest
---------------------

* A new module under an existing top-level package needs nothing: the
  longest-prefix rule in :meth:`Manifest.layer_of` assigns it.
* A new top-level package needs a :class:`Layer` entry (its allowed
  lower layers) and an entry in ``assignments``.
* A single import that the layer rules forbid but that is genuinely
  right gets a :class:`FriendEdge` — importer module, imported module
  prefix, and a one-line justification.  Friend edges are deliberate
  public record: ``simlint --graph dot`` draws them dashed.

Everything here is plain data so tests can build alternative
manifests for toy packages; :func:`default_manifest` is the one the
CLI uses for ``src/repro``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "Layer",
    "FriendEdge",
    "Manifest",
    "LAYERS",
    "FRIEND_EDGES",
    "HOT_ENTRY_POINTS",
    "ORACLE_MODULES",
    "FROZEN_MODULES",
    "ATTRIBUTION_MODULES",
    "default_manifest",
]


@dataclass(frozen=True)
class Layer:
    """One architectural layer and the layers it may import from."""

    name: str
    allowed: Tuple[str, ...]      # lower layers this layer may import
    doc: str = ""


@dataclass(frozen=True)
class FriendEdge:
    """A named exemption: ``importer`` may import ``imported_prefix``.

    ``importer`` is a full module name (or a package prefix); the edge
    matches when the importing module equals the prefix or sits under
    it, and likewise for the imported module.  Every friend edge
    carries a justification — it is the written record of why this
    one import is allowed to jump the DAG.
    """

    importer: str
    imported_prefix: str
    why: str

    def matches(self, src: str, dst: str) -> bool:
        return _prefix_match(src, self.importer) and \
            _prefix_match(dst, self.imported_prefix)


def _prefix_match(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


@dataclass
class Manifest:
    """The whole architecture contract, as data."""

    package: str
    layers: Dict[str, Layer]
    assignments: Dict[str, str]          # module prefix -> layer name
    friends: Tuple[FriendEdge, ...] = ()
    hot_entries: Tuple[str, ...] = ()    # "pkg.mod:Class.method" qualnames
    oracle_modules: Tuple[str, ...] = ()  # module names held to purity
    frozen_modules: Tuple[str, ...] = ()  # test oracles: never report in
    attribution_modules: Tuple[str, ...] = ()  # observers held to purity

    _layer_cache: Dict[str, Optional[str]] = field(
        default_factory=dict, repr=False)

    def layer_of(self, module: str) -> Optional[str]:
        """Layer of ``module`` by longest-prefix assignment."""
        if module in self._layer_cache:
            return self._layer_cache[module]
        best: Optional[str] = None
        best_len = -1
        for prefix, layer in self.assignments.items():
            if _prefix_match(module, prefix) and len(prefix) > best_len:
                best, best_len = layer, len(prefix)
        self._layer_cache[module] = best
        return best

    def import_allowed(self, src: str, dst: str) -> bool:
        """May module ``src`` import module ``dst``?"""
        src_layer = self.layer_of(src)
        dst_layer = self.layer_of(dst)
        if src_layer is None or dst_layer is None:
            return True          # unassigned modules are not judged
        if src_layer == dst_layer:
            return True          # within-layer imports are free
        layer = self.layers.get(src_layer)
        if layer is not None and dst_layer in layer.allowed:
            return True
        return any(f.matches(src, dst) for f in self.friends)

    def friend_for(self, src: str, dst: str) -> Optional[FriendEdge]:
        for f in self.friends:
            if f.matches(src, dst):
                return f
        return None


# ---------------------------------------------------------------------------
# The repro manifest
# ---------------------------------------------------------------------------

LAYERS: Tuple[Layer, ...] = (
    Layer("sim", (), "discrete-event engine, resources, cpu, trace, "
                     "stats, sanitizer — depends on nothing"),
    Layer("hw", (), "hardware parameters, physical memory, page tables, "
                    "IOMMU, PCIe, IOAT — pure models, no engine types"),
    Layer("analysis", (), "simlint itself; must not import the system "
                          "it analyses"),
    Layer("faults", ("sim",), "fault plans and the injector"),
    Layer("nvme", ("sim", "hw", "faults"),
          "device model: queues, arbiter, media backend, controller"),
    Layer("fs", ("sim", "hw", "faults"),
          "the ext4 model (raises fault types — PowerFailure during "
          "journal replay — so it sits above faults)"),
    Layer("kernel", ("sim", "hw", "faults", "nvme", "fs"),
          "syscalls, blockio, page cache, processes"),
    Layer("core", ("sim", "hw", "faults", "nvme", "fs", "kernel"),
          "BypassD userlib, file table, fmap manager"),
    Layer("obs", ("sim", "hw"),
          "metrics, monitor, exporters, trace diff (obs.perf drives a "
          "Machine via a friend edge)"),
    Layer("machine", ("sim", "hw", "faults", "nvme", "fs", "kernel",
                      "core"),
          "the full-system assembly (friend edge into obs for its "
          "telemetry registry)"),
    Layer("baselines", ("sim", "hw", "faults", "nvme", "fs", "kernel",
                        "core", "machine"),
          "io_uring / libaio / spdk / xrp / sync engines"),
    Layer("apps", ("sim", "hw", "nvme", "kernel", "machine",
                   "baselines"),
          "workload models: fio, YCSB, KVell, WiredTiger, BPF-KV, LSM "
          "— they drive kernel syscalls and pick I/O engines from the "
          "baselines registry"),
    Layer("bench", ("sim", "hw", "faults", "nvme", "kernel", "machine",
                    "obs", "apps", "core", "baselines"),
          "experiment registry, parallel runner, report tables"),
    Layer("chaos", ("sim", "hw", "faults", "nvme", "fs", "kernel",
                    "core", "machine", "baselines", "obs"),
          "scenario fuzzing, executor, oracles, shrinker"),
    Layer("sweep", ("sim", "hw", "faults", "nvme", "kernel", "machine",
                    "obs", "apps", "core", "baselines", "bench"),
          "declarative scenario grids over the experiment runner: "
          "grid expansion, per-cell metric records, baseline compare "
          "with obs.diff attribution"),
    Layer("root", ("sim", "hw", "faults", "nvme", "fs", "kernel",
                   "core", "machine", "baselines", "apps", "bench",
                   "chaos", "sweep", "obs", "analysis"),
          "the package façade (repro/__init__.py) re-exports the "
          "public API and may touch every layer"),
)

FRIEND_EDGES: Tuple[FriendEdge, ...] = (
    FriendEdge(
        "repro.machine", "repro.obs",
        "the Machine owns its telemetry wiring: it constructs the "
        "MetricsRegistry and Monitor it hands to every layer; obs "
        "stays below machine for everything else"),
    FriendEdge(
        "repro.obs.perf", "repro.machine",
        "the span-measured perf matrix boots a full Machine to time "
        "real request paths; it is a measurement harness, not a "
        "dependency of the obs data model"),
    FriendEdge(
        "repro.obs.perf", "repro.apps",
        "the perf matrix pins real workloads (workload_utils file "
        "materialisation) on the Machine it boots — same measurement-"
        "harness exemption as its machine edge"),
    FriendEdge(
        "repro.obs.perf", "repro.baselines",
        "the perf matrix times every baseline I/O engine from the "
        "registry; the obs data model itself never touches them"),
    FriendEdge(
        "repro.obs.hostprof", "repro.analysis",
        "the host profiler folds wall-clock self-time onto the layer "
        "DAG, so it reads the manifest's module->layer assignment; "
        "analysis depends on nothing, so the edge adds no cycle"),
    FriendEdge(
        "repro.chaos", "repro.bench.runner",
        "the chaos CLI fans scenario batches out over the bench "
        "runner's process pool instead of growing a second one, and "
        "pool workers reset the runner's ambient state before replay"),
)

# Per-event dispatch: everything the engine executes once per event.
# Reachability from these seeds defines "the hot path" for SIM018.
# The overhauled engine splits run()/_post into pre-bound fast and
# instrumented variants — both sides are per-event dispatch.
HOT_ENTRY_POINTS: Tuple[str, ...] = (
    "repro.sim.engine:Simulator.run",
    "repro.sim.engine:Simulator._run_fast",
    "repro.sim.engine:Simulator._run_slow",
    "repro.sim.engine:Simulator._post_fast",
    "repro.sim.engine:Simulator._post_slow",
    "repro.sim.engine:Simulator._place",
    "repro.sim.engine:Simulator._advance",
    "repro.sim.engine:Process._step",
    "repro.sim.engine:Process._resume",
    "repro.sim.engine:Event.succeed",
    "repro.sim.engine:Event.fail",
)

# Modules frozen as test oracles: verbatim historical code kept only so
# differential harnesses can compare behaviour against it.  simlint
# parses them (imports still feed the graph) but reports no violations
# inside them — fixing lint findings in a frozen oracle would defeat
# its purpose.
FROZEN_MODULES: Tuple[str, ...] = (
    "repro.sim.engine_reference",
)

# Modules whose functions must be pure observers (SIM017).
ORACLE_MODULES: Tuple[str, ...] = ("repro.chaos.oracles",)

# Latency-attribution observers held to the same inferred purity
# (SIM019): folding a trace into waterfalls or capturing exemplars
# must never mutate simulation state.
ATTRIBUTION_MODULES: Tuple[str, ...] = (
    "repro.obs.attribution",
    "repro.obs.exemplar",
)

_ASSIGNMENTS: Dict[str, str] = {
    "repro": "root",
    "repro.machine": "machine",
    "repro.sim": "sim",
    "repro.hw": "hw",
    "repro.analysis": "analysis",
    "repro.faults": "faults",
    "repro.nvme": "nvme",
    "repro.fs": "fs",
    "repro.kernel": "kernel",
    "repro.core": "core",
    "repro.obs": "obs",
    "repro.baselines": "baselines",
    "repro.apps": "apps",
    "repro.bench": "bench",
    "repro.chaos": "chaos",
    "repro.sweep": "sweep",
}


def default_manifest() -> Manifest:
    """The manifest for ``src/repro`` — what CI enforces."""
    return Manifest(
        package="repro",
        layers={layer.name: layer for layer in LAYERS},
        assignments=dict(_ASSIGNMENTS),
        friends=FRIEND_EDGES,
        hot_entries=HOT_ENTRY_POINTS,
        oracle_modules=ORACLE_MODULES,
        frozen_modules=FROZEN_MODULES,
        attribution_modules=ATTRIBUTION_MODULES,
    )
