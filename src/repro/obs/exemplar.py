"""Tail exemplars: full span trees kept only for the slowest ops.

Aggregates (histograms, gauges) say *that* p99 moved; an exemplar says
*why*: it is one concrete slow operation with its complete span tree
and latency waterfall attached.  :func:`capture_exemplars` replays a
trace's operations in completion order through a per-tenant
trailing-window reservoir:

* per tenant (host ``tid``), op durations feed one of the existing
  log-linear histograms (:class:`repro.obs.metrics.Histogram`), whose
  exact bucket bounds (:meth:`Histogram.quantile_bounds`) give the
  current percentile threshold — same ≤1/32 relative-error contract as
  every other quantile in the repo;
* an op at or above the threshold (after a warm-up count) is retained
  with its subtree and :class:`~repro.obs.attribution.Waterfall`;
* only the most recent ``capacity`` qualifiers per tenant survive —
  a trailing window, so memory stays bounded however long the run.

Everything is computed from recorded spans with seeded-run data only,
so same-seed runs produce byte-identical exemplar dumps.  Like
:mod:`repro.obs.attribution`, this module is held to inferred purity
by simlint rule SIM019 — capturing exemplars must never mutate
simulation state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.trace import Span
from .attribution import Waterfall, build_waterfall, op_roots
from .export import children_map, format_tree
from .metrics import Histogram

__all__ = [
    "ExemplarConfig",
    "Exemplar",
    "capture_exemplars",
    "exemplars_json",
    "render_exemplars",
    "top_exemplars",
]


@dataclass(frozen=True)
class ExemplarConfig:
    """Knobs for the trailing-window reservoir."""

    percentile: float = 99.0   # ops at/above this percentile qualify
    capacity: int = 4          # trailing window per tenant
    warmup: int = 16           # ops seen before thresholding starts

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(
                f"percentile out of range: {self.percentile}")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.warmup < 1:
            raise ValueError("warmup must be >= 1")


@dataclass(frozen=True, slots=True)
class Exemplar:
    """One retained slow operation."""

    op: str
    trace_id: int
    tid: int
    start_ns: int
    duration_ns: int
    threshold_ns: int              # bucket lower bound that qualified it
    waterfall: Waterfall
    subtree: Tuple[Span, ...]      # the op's full span tree

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "trace_id": self.trace_id,
            "tid": self.tid,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "threshold_ns": self.threshold_ns,
            "waterfall": self.waterfall.to_dict(),
            "tree": format_tree(list(self.subtree)),
        }


def _subtree(root: Span, kids: Dict[int, List[Span]]) -> Tuple[Span, ...]:
    out: List[Span] = []
    stack = [root]
    while stack:
        span = stack.pop()
        out.append(span)
        # reversed: children are start-sorted, the stack pops LIFO
        stack.extend(reversed(kids.get(span.span_id, [])))
    return tuple(out)


def capture_exemplars(
        tracer_or_spans,
        config: Optional[ExemplarConfig] = None,
) -> Dict[int, List[Exemplar]]:
    """Per-tenant (tid) trailing-window exemplars from a trace.

    Ops are replayed in completion order (end, then span id) — the
    order a live reservoir would have seen them — so the trailing
    window has a well-defined, deterministic meaning.
    """
    config = config or ExemplarConfig()
    spans = list(getattr(tracer_or_spans, "spans", tracer_or_spans))
    kids = children_map(spans)
    roots = sorted(op_roots(spans), key=lambda s: (s.end_ns, s.span_id))
    hists: Dict[int, Histogram] = {}
    out: Dict[int, List[Exemplar]] = {}
    for root in roots:
        hist = hists.get(root.tid)
        if hist is None:
            hist = Histogram(f"exemplar.tid{root.tid}.lat_ns")
            hists[root.tid] = hist
        if hist.count >= config.warmup:
            threshold = hist.quantile_bounds(config.percentile)[0]
            if root.duration_ns >= threshold:
                window = out.setdefault(root.tid, [])
                window.append(Exemplar(
                    op=(f"{root.category}/{root.label}"
                        if root.label else root.category),
                    trace_id=root.trace_id,
                    tid=root.tid,
                    start_ns=root.start_ns,
                    duration_ns=root.duration_ns,
                    threshold_ns=threshold,
                    waterfall=build_waterfall(root, kids),
                    subtree=_subtree(root, kids),
                ))
                if len(window) > config.capacity:
                    del window[0]          # trailing window: keep latest
        hist.record(root.duration_ns)
    return out


def top_exemplars(per_tenant: Dict[int, List[Exemplar]],
                  n: int = 3) -> List[Exemplar]:
    """The ``n`` slowest retained exemplars across all tenants, by
    (duration desc, start, tid) — deterministic."""
    merged = [ex for tid in sorted(per_tenant)
              for ex in per_tenant[tid]]
    merged.sort(key=lambda ex: (-ex.duration_ns, ex.start_ns, ex.tid))
    return merged[:n]


def exemplars_json(per_tenant: Dict[int, List[Exemplar]]) -> str:
    """Deterministic JSON dump, keyed by tenant tid."""
    payload = {str(tid): [ex.to_dict() for ex in per_tenant[tid]]
               for tid in sorted(per_tenant)}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def render_exemplars(per_tenant: Dict[int, List[Exemplar]],
                     limit_per_tenant: Optional[int] = None) -> str:
    """Text report: per tenant, the retained tail ops with their
    wait/service split."""
    from .attribution import render_waterfall
    lines: List[str] = []
    for tid in sorted(per_tenant):
        window = per_tenant[tid]
        if limit_per_tenant is not None:
            window = window[-limit_per_tenant:]
        lines.append(f"tenant tid={tid}: {len(window)} tail "
                     f"exemplar(s)")
        for ex in window:
            lines.append(f"  {ex.op} {ex.duration_ns} ns "
                         f"(threshold {ex.threshold_ns} ns)")
            for wl in render_waterfall(ex.waterfall).splitlines():
                lines.append("    " + wl)
    return "\n".join(lines) + ("\n" if lines else "")
