"""Baseline I/O engines the paper compares BypassD against."""

from .base import EngineFile, IOEngine
from .sync_io import KernelFile, SyncEngine
from .libaio import AIOContext, AioOp, LibaioEngine, LibaioFile
from .io_uring import IOUringEngine, IOUringFile, IOUringRing
from .spdk import SPDKEngine, SPDKFile
from .xrp import XRPEngine, XRPFile
from .registry import (
    ENGINE_NAMES,
    BypassDEngine,
    chained_read,
    make_engine,
)

__all__ = [
    "EngineFile",
    "IOEngine",
    "KernelFile",
    "SyncEngine",
    "AIOContext",
    "AioOp",
    "LibaioEngine",
    "LibaioFile",
    "IOUringEngine",
    "IOUringFile",
    "IOUringRing",
    "SPDKEngine",
    "SPDKFile",
    "XRPEngine",
    "XRPFile",
    "ENGINE_NAMES",
    "BypassDEngine",
    "chained_read",
    "make_engine",
]
