"""Tests for the real LSM-tree store."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GiB, Machine
from repro.apps.lsm import BloomFilter, LSMStore
from repro.baselines.registry import make_engine


def fresh_store(engine_name="bypassd"):
    m = Machine(capacity_bytes=2 * GiB, memory_bytes=256 << 20)
    proc = m.spawn_process()
    engine = make_engine(m, proc, engine_name)
    t = proc.new_thread()

    def body():
        store = yield from LSMStore.create(m, proc, engine, t)
        return store

    store = m.run_process(body())
    return m, store


class TestBloom:
    def test_no_false_negatives(self):
        b = BloomFilter(bits=4096, hashes=3)
        keys = [f"k{i}".encode() for i in range(200)]
        for k in keys:
            b.add(k)
        assert all(b.might_contain(k) for k in keys)

    def test_some_true_negatives(self):
        b = BloomFilter(bits=1 << 16, hashes=4)
        for i in range(100):
            b.add(f"in{i}".encode())
        misses = sum(1 for i in range(1000)
                     if not b.might_contain(f"out{i}".encode()))
        assert misses > 900  # fp rate well under 10%

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(bits=0)


class TestBasics:
    def test_put_get_in_memtable(self):
        m, store = fresh_store()

        def body():
            yield from store.put(b"k", b"v")
            return (yield from store.get(b"k"))

        assert m.run_process(body()) == b"v"
        assert store.flushes == 0

    def test_flush_to_sstable_and_read_back(self):
        m, store = fresh_store()

        def body():
            for i in range(100):
                yield from store.put(f"key{i:03d}".encode(),
                                     f"value-{i}".encode() * 4)
            yield from store.flush()
            assert not store.memtable
            vals = []
            for i in (0, 42, 99):
                v = yield from store.get(f"key{i:03d}".encode())
                vals.append(v)
            return vals

        vals = m.run_process(body())
        assert vals == [b"value-0" * 4, b"value-42" * 4,
                        b"value-99" * 4]
        assert store.flushes == 1
        assert store.resident_tables == 1

    def test_automatic_flush_on_memtable_limit(self):
        m, store = fresh_store()

        def body():
            big = b"x" * 1024
            for i in range(100):  # 100KB > 64KB limit
                yield from store.put(f"k{i:04d}".encode(), big)
            return store.flushes

        assert m.run_process(body()) >= 1

    def test_compaction_cascades(self):
        m, store = fresh_store()

        def body():
            for batch in range(3):
                for i in range(50):
                    yield from store.put(
                        f"b{batch}-k{i:03d}".encode(), b"v" * 100)
                yield from store.flush()
            # Three flushes: first landed in L0, later ones merged down.
            total = store.total_records_on_disk()
            return total

        total = m.run_process(body())
        assert total == 150
        assert store.compactions >= 1

    def test_overwrite_latest_wins_across_levels(self):
        m, store = fresh_store()

        def body():
            yield from store.put(b"dup", b"old")
            yield from store.flush()
            yield from store.put(b"dup", b"new")
            yield from store.flush()   # compacts old+new
            return (yield from store.get(b"dup"))

        assert m.run_process(body()) == b"new"

    def test_delete_tombstone(self):
        m, store = fresh_store()

        def body():
            yield from store.put(b"gone", b"v")
            yield from store.flush()
            yield from store.delete(b"gone")
            v1 = yield from store.get(b"gone")   # memtable tombstone
            yield from store.flush()
            v2 = yield from store.get(b"gone")   # on-disk resolution
            return v1, v2

        assert m.run_process(body()) == (None, None)

    def test_missing_key(self):
        m, store = fresh_store()

        def body():
            yield from store.put(b"a", b"1")
            yield from store.flush()
            return (yield from store.get(b"nope"))

        assert m.run_process(body()) is None

    def test_bloom_filters_skip_levels(self):
        m, store = fresh_store()

        def body():
            for i in range(60):
                yield from store.put(f"present{i}".encode(), b"v")
            yield from store.flush()
            for i in range(300):
                yield from store.get(f"absent{i}".encode())
            return store.bloom_skips

        assert m.run_process(body()) > 200

    def test_scan_merged_and_ordered(self):
        m, store = fresh_store()

        def body():
            for i in range(0, 100, 2):   # evens on disk
                yield from store.put(f"s{i:03d}".encode(),
                                     str(i).encode())
            yield from store.flush()
            for i in range(1, 100, 2):   # odds in the memtable
                yield from store.put(f"s{i:03d}".encode(),
                                     str(i).encode())
            out = yield from store.scan(b"s010", 10)
            return out

        out = m.run_process(body())
        assert [k for k, _ in out] == \
            [f"s{i:03d}".encode() for i in range(10, 20)]

    def test_wal_truncated_after_flush(self):
        m, store = fresh_store()

        def body():
            for i in range(30):
                yield from store.put(f"w{i}".encode(), b"v" * 50)
            yield from store.flush()
            return store.wal.size

        assert m.run_process(body()) == 0

    def test_compacted_tables_unlinked(self):
        m, store = fresh_store()

        def body():
            for batch in range(3):
                for i in range(30):
                    yield from store.put(f"c{batch}-{i}".encode(), b"v")
                yield from store.flush()

        m.run_process(body())
        # Only the resident tables' files remain.
        live = {t.path for t in store.levels if t is not None}
        for seq in range(1, store._table_seq + 1):
            path = f"/lsm.sst{seq}"
            assert m.fs.exists(path) == (path in live)
        m.fs.fsck()

    def test_works_on_sync_engine_too(self):
        m, store = fresh_store("sync")

        def body():
            for i in range(50):
                yield from store.put(f"k{i}".encode(), b"v" * 64)
            yield from store.flush()
            return (yield from store.get(b"k25"))

        assert m.run_process(body()) == b"v" * 64


class TestRecovery:
    def _reopen(self, m, proc=None):
        proc = proc or m.spawn_process()
        engine = make_engine(m, proc, "bypassd")
        t = proc.new_thread()

        def body():
            return (yield from LSMStore.open(m, proc, engine, t))

        return m.run_process(body())

    def test_reopen_restores_tables_and_wal(self):
        m, store = fresh_store()

        def body():
            for i in range(80):
                yield from store.put(f"flushed{i:03d}".encode(),
                                     b"F" * 64)
            yield from store.flush()
            # These live only in the WAL + memtable at "crash" time.
            for i in range(10):
                yield from store.put(f"pending{i}".encode(), b"P" * 32)

        m.run_process(body())
        # "Crash": forget the store object entirely; reopen from disk.
        recovered = self._reopen(m)

        def verify():
            v1 = yield from recovered.get(b"flushed042")
            v2 = yield from recovered.get(b"pending7")
            v3 = yield from recovered.get(b"neverwritten")
            return v1, v2, v3

        v1, v2, v3 = m.run_process(verify())
        assert v1 == b"F" * 64       # from the recovered SSTable
        assert v2 == b"P" * 32       # replayed from the WAL
        assert v3 is None
        assert recovered.total_records_on_disk() == 80
        assert len(recovered.memtable) == 10

    def test_recovered_bloom_filters_work(self):
        m, store = fresh_store()

        def body():
            for i in range(60):
                yield from store.put(f"in{i}".encode(), b"v")
            yield from store.flush()

        m.run_process(body())
        recovered = self._reopen(m)

        def probe():
            for i in range(200):
                yield from recovered.get(f"absent{i}".encode())
            return recovered.bloom_skips

        assert m.run_process(probe()) > 150

    def test_recovery_after_compactions(self):
        m, store = fresh_store()

        def body():
            for batch in range(3):
                for i in range(40):
                    yield from store.put(
                        f"b{batch}k{i:02d}".encode(),
                        f"{batch}-{i}".encode())
                yield from store.flush()

        m.run_process(body())
        recovered = self._reopen(m)

        def verify():
            vals = []
            for batch in range(3):
                v = yield from recovered.get(f"b{batch}k05".encode())
                vals.append(v)
            return vals

        assert m.run_process(verify()) == [b"0-5", b"1-5", b"2-5"]
        assert recovered._table_seq == store._table_seq

    def test_empty_store_reopen(self):
        m, store = fresh_store()
        recovered = self._reopen(m)
        assert recovered.resident_tables == 0
        assert not recovered.memtable


class TestLSMProperty:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=120),
        st.sampled_from(["put", "delete", "get"])),
        min_size=1, max_size=80),
        st.integers(min_value=0, max_value=999))
    def test_matches_dict_with_random_flushes(self, ops, seed):
        rng = random.Random(seed)
        m, store = fresh_store()
        model = {}

        def body():
            for keyn, op in ops:
                key = f"key{keyn:03d}".encode()
                if op == "put":
                    value = f"v{rng.randrange(1000)}".encode()
                    yield from store.put(key, value)
                    model[key] = value
                elif op == "delete":
                    yield from store.delete(key)
                    model.pop(key, None)
                else:
                    got = yield from store.get(key)
                    assert got == model.get(key)
                if rng.random() < 0.08:
                    yield from store.flush()
            yield from store.flush()
            for key, value in sorted(model.items()):
                got = yield from store.get(key)
                assert got == value

        m.run_process(body())
