"""Figure 12: read throughput over time across an access revocation.

Paper: a reader starts on the BypassD interface; when another process
opens the file in buffered mode the kernel revokes direct access and
the reader transparently continues on the kernel interface at a lower
throughput.
"""

from repro.bench import fig12_revocation_timeline


def test_fig12(experiment):
    table = experiment(fig12_revocation_timeline)
    points = [(t, v) for t, v in
              zip(table.column("Time (ms)"),
                  table.column("Throughput (K IOPS)"))]
    assert len(points) >= 20
    revoke_ms = 10.0
    # Skip the setup transient (open + fallocate fill the first windows).
    pre = [v for t, v in points if 2.0 <= t < revoke_ms - 1]
    post = [v for t, v in points if t > revoke_ms + 1]
    pre_mean = sum(pre) / len(pre)
    post_mean = sum(post) / len(post)
    # The process keeps running (no zeros after the switch)...
    assert min(post) > 0
    # ...but at kernel-interface throughput: a clear, stable drop.
    assert post_mean < 0.8 * pre_mean
    assert pre_mean / post_mean < 3.0  # same order of magnitude
    # Both phases are internally steady.
    assert max(pre) - min(pre) < 0.25 * pre_mean
    assert max(post) - min(post) < 0.25 * post_mean
