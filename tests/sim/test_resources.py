"""Unit tests for locks, semaphores, resources and stores."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import Lock, Resource, Semaphore, Store


class TestSemaphore:
    def test_acquire_release_counts(self):
        sim = Simulator()
        sem = Semaphore(sim, value=2)
        sem.acquire()
        sem.acquire()
        sim.run()
        assert sem.value == 0
        sem.release()
        assert sem.value == 1

    def test_negative_value_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Semaphore(sim, value=-1)

    def test_fifo_wakeup(self):
        sim = Simulator()
        sem = Semaphore(sim, value=1)
        order = []

        def worker(name):
            yield sem.acquire()
            order.append((name, sim.now))
            yield sim.timeout(10)
            sem.release()

        for name in ("a", "b", "c"):
            sim.process(worker(name))
        sim.run()
        assert order == [("a", 0), ("b", 10), ("c", 20)]

    def test_waiting_count(self):
        sim = Simulator()
        sem = Semaphore(sim, value=0)
        sem.acquire()
        sem.acquire()
        assert sem.waiting == 2
        sem.release()
        assert sem.waiting == 1


class TestLock:
    def test_mutual_exclusion(self):
        sim = Simulator()
        lock = Lock(sim)
        inside = []

        def critical(name):
            yield lock.acquire()
            inside.append(name)
            assert len(inside) == 1
            yield sim.timeout(5)
            inside.remove(name)
            lock.release()

        for name in range(4):
            sim.process(critical(name))
        sim.run()
        assert sim.now == 20

    def test_locked_property(self):
        sim = Simulator()
        lock = Lock(sim)
        assert not lock.locked
        lock.acquire()
        assert lock.locked


class TestResource:
    def test_capacity_enforced(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        done = []

        def user(name):
            yield res.request()
            yield sim.timeout(10)
            res.release()
            done.append((name, sim.now))

        for name in range(4):
            sim.process(user(name))
        sim.run()
        # Two run in [0,10), two in [10,20).
        assert [t for _, t in done] == [10, 10, 20, 20]

    def test_release_without_request_raises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            res.release()

    def test_queue_len(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        res.request()
        res.request()
        assert res.users == 1
        assert res.queue_len == 2


class TestStore:
    def test_put_get_fifo(self):
        sim = Simulator()
        store = Store(sim)

        def body():
            store.put("x")
            store.put("y")
            a = yield store.get()
            b = yield store.get()
            return (a, b)

        assert sim.run_process(body()) == ("x", "y")

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)

        def consumer():
            item = yield store.get()
            return (item, sim.now)

        def producer():
            yield sim.timeout(25)
            store.put("late")

        proc = sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert proc.value == ("late", 25)

    def test_bounded_put_blocks(self):
        sim = Simulator()
        store = Store(sim, capacity=1)

        def producer():
            yield store.put(1)
            yield store.put(2)  # blocks until a get
            return sim.now

        def consumer():
            yield sim.timeout(40)
            yield store.get()

        proc = sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert proc.value == 40

    def test_try_get(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None
        store.put("a")
        assert store.try_get() == "a"
        assert len(store) == 0
