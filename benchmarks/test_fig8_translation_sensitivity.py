"""Figure 8: effect of VBA translation latency on read bandwidth.

Paper: bandwidth decreases slightly as translation slows; even at
1.35 us of translation latency BypassD keeps significantly higher
bandwidth than the sync baseline; the 350 ns (cached FTE) vs 550 ns
(uncached) difference is minimal, so an FTE IOTLB is not critical.
"""

from repro.bench import fig8_translation_sensitivity


def test_fig8(experiment):
    table = experiment(fig8_translation_sensitivity)
    bw = {}
    for delay, engine, gbps in table.rows:
        bw[delay if engine == "bypassd" else "sync"] = gbps

    # Monotone decrease with translation latency.
    delays = sorted(d for d in bw if isinstance(d, int) and d >= 0)
    for lo, hi in zip(delays, delays[1:]):
        assert bw[lo] >= bw[hi]
    # Even the slowest translation beats sync comfortably.
    assert bw[1350] > 1.15 * bw["sync"]
    # Caching FTEs (350ns) barely helps over 550ns: <8% difference.
    assert (bw[350] - bw[550]) / bw[550] < 0.08
